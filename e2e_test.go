// End-to-end test of the build/serve toolchain as a user runs it:
// generate a dataset, build a snapshot with the real c2build binary,
// start the real c2serve daemon on a free port, and check that every
// HTTP answer matches the in-process Index bit-for-bit — including
// while 100 concurrent clients are hammering the daemon through a
// zero-downtime snapshot hot-swap (POST /admin/reload and SIGHUP).
package c2knn_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"c2knn"
	"c2knn/internal/dataset"
	"c2knn/internal/server"
)

// buildBinaries compiles c2build and c2serve once into dir.
func buildBinaries(t *testing.T, dir string) (c2build, c2serve string) {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; skipping binary e2e")
	}
	c2build = filepath.Join(dir, "c2build")
	c2serve = filepath.Join(dir, "c2serve")
	args := []string{"build"}
	// When the test itself runs under -race (the CI server-race job),
	// build the daemon race-instrumented too — otherwise the hot-swap
	// interleavings this test provokes would only be checked in the
	// client harness, not in the process actually serving them.
	if server.RaceEnabled {
		args = append(args, "-race")
	}
	for bin, pkg := range map[string]string{c2build: "./cmd/c2build", c2serve: "./cmd/c2serve"} {
		cmd := exec.Command(goBin, append(args, "-o", bin, pkg)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return c2build, c2serve
}

// startServe launches the daemon and returns its base URL and process.
func startServe(t *testing.T, c2serve, snap string) (string, *exec.Cmd) {
	t.Helper()
	return startServeArgs(t, c2serve, "-snap", snap, "-addr", "127.0.0.1:0", "-cache", "2048")
}

// startServeArgs launches c2serve with explicit flags (any role) and
// returns its base URL and process.
func startServeArgs(t *testing.T, c2serve string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(c2serve, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	// The daemon prints "c2serve: listening on HOST:PORT" once bound.
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "c2serve: listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd
	case <-deadline:
		t.Fatal("c2serve did not report a listen address within 30s")
		return "", nil
	}
}

type e2eRecommendResult struct {
	User  int32   `json:"user"`
	Items []int32 `json:"items"`
}

type e2eBatchResponse struct {
	Results []e2eRecommendResult `json:"results"`
}

func fetchRecommend(client *http.Client, base string, u int32, n int) ([]int32, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", base, u, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var rec e2eRecommendResult
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return nil, err
	}
	return rec.Items, nil
}

func fetchEpoch(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	return h.Epoch, nil
}

func TestE2EServeDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e is not -short")
	}
	dir := t.TempDir()
	c2build, c2serve := buildBinaries(t, dir)

	// Synth dataset -> plain-text profile file -> c2build -snap.
	d, err := c2knn.Generate("ml1M", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "data.txt")
	if err := dataset.WriteFile(dataPath, d); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "index.c2")
	build := exec.Command(c2build, "-in", dataPath, "-snap", snap, "-k", "10", "-workers", "2", "-seed", "7")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("c2build: %v\n%s", err, out)
	}

	// The in-process reference the daemon must match bit-for-bit.
	ix, err := c2knn.LoadIndex(snap)
	if err != nil {
		t.Fatal(err)
	}
	const nRec = 10
	users := ix.NumUsers()
	expected := make([][]int32, users)
	for u := 0; u < users; u++ {
		expected[u] = ix.Recommend(int32(u), nRec)
		if expected[u] == nil {
			expected[u] = []int32{}
		}
	}

	base, proc := startServe(t, c2serve, snap)
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        200,
			MaxIdleConnsPerHost: 200,
		},
	}

	// Phase 1: serial identity, single and batched.
	for u := 0; u < users; u += 3 {
		items, err := fetchRecommend(client, base, int32(u), nRec)
		if err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
		if !slices.Equal(items, expected[u]) {
			t.Fatalf("user %d: HTTP %v, Index.Recommend %v", u, items, expected[u])
		}
	}
	batchUsers := make([]int32, 0, users)
	for u := 0; u < users; u++ {
		batchUsers = append(batchUsers, int32(u))
	}
	body, _ := json.Marshal(map[string]any{"users": batchUsers, "n": nRec})
	resp, err := client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch e2eBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != users {
		t.Fatalf("batch returned %d results for %d users", len(batch.Results), users)
	}
	for u, r := range batch.Results {
		if !slices.Equal(r.Items, expected[u]) {
			t.Fatalf("user %d: batched HTTP %v, Index.Recommend %v", u, r.Items, expected[u])
		}
	}

	// Phase 2: 100 concurrent clients, with a hot swap mid-load. The
	// snapshot content is unchanged (same file reloaded), so every
	// response — before, during, after the swap — must stay bit-for-bit
	// identical, and no request may fail.
	const clients = 100
	const perClient = 20
	var failed, mismatched int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				u := (c*perClient + i) % users
				var items []int32
				var err error
				if i%5 == 4 { // every fifth request is a small batch
					span := []int32{int32(u), int32((u + 1) % users), int32((u + 2) % users)}
					b, _ := json.Marshal(map[string]any{"users": span, "n": nRec})
					resp, perr := client.Post(base+"/v1/recommend", "application/json", bytes.NewReader(b))
					if perr != nil {
						err = perr
					} else {
						var br e2eBatchResponse
						err = json.NewDecoder(resp.Body).Decode(&br)
						resp.Body.Close()
						if err == nil && resp.StatusCode != 200 {
							err = fmt.Errorf("status %d", resp.StatusCode)
						}
						if err == nil && len(br.Results) != len(span) {
							// A truncated results array is a wrong answer,
							// not a shorter loop.
							err = fmt.Errorf("batch returned %d results for %d users", len(br.Results), len(span))
						}
						if err == nil {
							for j, r := range br.Results {
								if !slices.Equal(r.Items, expected[span[j]]) {
									mu.Lock()
									mismatched++
									mu.Unlock()
								}
							}
							continue
						}
					}
					if err != nil {
						mu.Lock()
						failed++
						mu.Unlock()
					}
					continue
				}
				items, err = fetchRecommend(client, base, int32(u), nRec)
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				// Compare unconditionally: a wrong-shaped 200 body decodes
				// to nil items and must count as a mismatch, not a skip
				// (expected[u] is non-nil for every user with items).
				if !slices.Equal(items, expected[u]) {
					mu.Lock()
					mismatched++
					mu.Unlock()
				}
			}
		}(c)
	}
	// Mid-load: hot-swap twice, once via the admin endpoint and once via
	// SIGHUP, checking the epoch advances both times.
	epoch0, err := fetchEpoch(client, base)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatalf("admin reload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("admin reload: status %d", resp.StatusCode)
	}
	if err := proc.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}
	swapDeadline := time.Now().Add(15 * time.Second)
	for {
		ep, err := fetchEpoch(client, base)
		if err == nil && ep >= epoch0+2 {
			break
		}
		if time.Now().After(swapDeadline) {
			t.Fatalf("epoch did not advance past %d within 15s (last %v, err %v)", epoch0+1, ep, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()
	if failed != 0 {
		t.Fatalf("%d requests failed during the concurrent hot-swap load", failed)
	}
	if mismatched != 0 {
		t.Fatalf("%d responses diverged from Index.Recommend during the load", mismatched)
	}

	// Phase 3: stats sanity after the storm.
	resp, err = client.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Requests     uint64  `json:"requests"`
		CacheHitRate float64 `json:"cache_hit_rate"`
		Swaps        uint64  `json:"snapshot_swaps"`
		P99Micros    float64 `json:"p99_us"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests < clients*perClient/2 {
		t.Fatalf("statsz reports %d requests, expected at least %d", stats.Requests, clients*perClient/2)
	}
	if stats.Swaps < 2 {
		t.Fatalf("statsz reports %d swaps, expected >= 2", stats.Swaps)
	}
	if stats.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate %v after a repeating load, expected > 0", stats.CacheHitRate)
	}
	if stats.P99Micros <= 0 {
		t.Fatalf("p99 %v after traffic, expected > 0", stats.P99Micros)
	}

	// Phase 4: graceful drain — SIGTERM must exit 0 after draining.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("c2serve did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("c2serve did not exit within 20s of SIGTERM")
	}
}

// routerStatsz is the slice of the router /statsz body this test reads.
type routerStatsz struct {
	ReloadFailures uint64 `json:"reload_failures"`
	LastReloadKind string `json:"last_reload_kind"`
	Router         struct {
		Partials  uint64 `json:"partial_responses"`
		Failovers uint64 `json:"failover_tries"`
		EpochSkew bool   `json:"epoch_skew"`
		EpochMin  uint64 `json:"epoch_min"`
		EpochMax  uint64 `json:"epoch_max"`
		Shards    []struct {
			ID        int  `json:"id"`
			EpochSkew bool `json:"epoch_skew"`
		} `json:"shards"`
	} `json:"router"`
}

func fetchRouterStatsz(client *http.Client, base string) (routerStatsz, error) {
	var st routerStatsz
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// fetchRecommendPartial is fetchRecommend plus the degradation signal:
// it reports whether the router flagged the response X-C2-Partial.
func fetchRecommendPartial(client *http.Client, base string, u int32, n int) ([]int32, bool, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/recommend?user=%d&n=%d", base, u, n))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	partial := resp.Header.Get("X-C2-Partial") != ""
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		return nil, partial, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var rec e2eRecommendResult
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return nil, partial, err
	}
	return rec.Items, partial, nil
}

// TestE2EShardedServe runs the full sharded tier as an operator would:
// c2build -shards 2, four shard daemons (two replicas per shard), and a
// router fronting them — then checks routed answers match the unsharded
// in-process Index, keeps 100 concurrent clients running while one
// replica is SIGKILLed and the other shard hot-swaps its snapshot one
// replica at a time (the router must surface the transient epoch skew),
// and requires zero failed requests and zero wrong answers throughout.
func TestE2EShardedServe(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e is not -short")
	}
	dir := t.TempDir()
	c2build, c2serve := buildBinaries(t, dir)

	d, err := c2knn.Generate("ml1M", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "data.txt")
	if err := dataset.WriteFile(dataPath, d); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "index.c2")
	build := exec.Command(c2build, "-in", dataPath, "-snap", snap, "-k", "10", "-workers", "2", "-seed", "7", "-shards", "2")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("c2build -shards: %v\n%s", err, out)
	}
	for _, f := range []string{snap + ".shard0", snap + ".shard1", snap + ".manifest"} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("c2build -shards did not write %s: %v", f, err)
		}
	}

	// The unsharded reference: routed answers must match it exactly.
	ix, err := c2knn.LoadIndex(snap)
	if err != nil {
		t.Fatal(err)
	}
	const nRec = 10
	users := ix.NumUsers()
	expected := make([][]int32, users)
	for u := 0; u < users; u++ {
		expected[u] = ix.Recommend(int32(u), nRec)
		if expected[u] == nil {
			expected[u] = []int32{}
		}
	}

	// Two replicas per shard. Caches stay on (default) — replicas of one
	// shard must still agree because answers are pure index functions.
	var reps [2][2]struct {
		base string
		proc *exec.Cmd
	}
	for s := 0; s < 2; s++ {
		for r := 0; r < 2; r++ {
			base, proc := startServeArgs(t, c2serve,
				"-role", "shard", "-snap", fmt.Sprintf("%s.shard%d", snap, s), "-addr", "127.0.0.1:0")
			reps[s][r].base, reps[s][r].proc = base, proc
		}
	}
	router, routerProc := startServeArgs(t, c2serve,
		"-role", "router", "-manifest", snap+".manifest",
		"-shard-addrs", fmt.Sprintf("0=%s|%s,1=%s|%s", reps[0][0].base, reps[0][1].base, reps[1][0].base, reps[1][1].base),
		"-addr", "127.0.0.1:0", "-hedge", "100ms", "-health-every", "150ms",
		// Race-instrumented CI runs saturate the box; a generous upstream
		// budget keeps health probes from flapping replicas unhealthy.
		"-upstream-timeout", "10s")
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        200,
			MaxIdleConnsPerHost: 200,
		},
	}

	// Phase 1: serial identity through the router — singles and one big
	// batch spanning both shards.
	for u := 0; u < users; u += 3 {
		items, partial, err := fetchRecommendPartial(client, router, int32(u), nRec)
		if err != nil {
			t.Fatalf("user %d via router: %v", u, err)
		}
		if partial {
			t.Fatalf("user %d: partial response with all replicas up", u)
		}
		if !slices.Equal(items, expected[u]) {
			t.Fatalf("user %d: routed %v, Index.Recommend %v", u, items, expected[u])
		}
	}
	batchUsers := make([]int32, 0, users)
	for u := 0; u < users; u++ {
		batchUsers = append(batchUsers, int32(u))
	}
	body, _ := json.Marshal(map[string]any{"users": batchUsers, "n": nRec})
	resp, err := client.Post(router+"/v1/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch e2eBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != users {
		t.Fatalf("routed batch returned %d results for %d users", len(batch.Results), users)
	}
	for u, r := range batch.Results {
		if r.User != int32(u) {
			t.Fatalf("routed batch result %d is for user %d: cross-shard stitching broke request order", u, r.User)
		}
		if !slices.Equal(r.Items, expected[u]) {
			t.Fatalf("user %d: routed batch %v, Index.Recommend %v", u, r.Items, expected[u])
		}
	}

	// Phase 2: 100 concurrent clients while a shard-0 replica is killed
	// outright and shard 1 hot-swaps its snapshot one replica at a time.
	// Failover must keep every request whole: a partial response is only
	// tolerated (bounded, flagged) — a failed request or a silently wrong
	// answer never is.
	const clients = 100
	const perClient = 20
	var failed, mismatched, partials int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				u := (c*perClient + i) % users
				if i%5 == 4 { // every fifth request is a small cross-shard batch
					span := []int32{int32(u), int32((u + 1) % users), int32((u + 2) % users)}
					b, _ := json.Marshal(map[string]any{"users": span, "n": nRec})
					resp, err := client.Post(router+"/v1/recommend", "application/json", bytes.NewReader(b))
					if err != nil {
						mu.Lock()
						failed++
						mu.Unlock()
						continue
					}
					partial := resp.Header.Get("X-C2-Partial") != ""
					var br e2eBatchResponse
					err = json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					if err == nil && resp.StatusCode != 200 {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
					if err == nil && len(br.Results) != len(span) {
						err = fmt.Errorf("batch returned %d results for %d users", len(br.Results), len(span))
					}
					if err != nil {
						mu.Lock()
						failed++
						mu.Unlock()
						continue
					}
					mu.Lock()
					if partial {
						partials++
					}
					for j, r := range br.Results {
						// A partial response substitutes flagged empty rows;
						// only unflagged divergence is a wrong answer.
						if !partial && !slices.Equal(r.Items, expected[span[j]]) {
							mismatched++
						}
					}
					mu.Unlock()
					continue
				}
				items, partial, err := fetchRecommendPartial(client, router, int32(u), nRec)
				mu.Lock()
				switch {
				case err != nil:
					failed++
				case partial:
					partials++
				case !slices.Equal(items, expected[u]):
					mismatched++
				}
				mu.Unlock()
			}
		}(c)
	}

	// Mid-load event 1: SIGKILL a shard-0 replica. The router's health
	// poll plus per-request failover absorb it.
	if err := reps[0][0].proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// Mid-load event 2: hot-swap shard 1's snapshot one replica at a
	// time. Between the two SIGHUPs its replicas serve different epochs —
	// the router must surface the skew in /statsz.
	if err := reps[1][0].proc.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	skewDeadline := time.Now().Add(60 * time.Second)
	for {
		st, err := fetchRouterStatsz(client, router)
		if err == nil && st.Router.EpochSkew {
			if len(st.Router.Shards) != 2 || st.Router.Shards[0].EpochSkew || !st.Router.Shards[1].EpochSkew {
				t.Fatalf("skew misattributed: %+v", st.Router.Shards)
			}
			// The skew flag and the reload-failure record are updated by
			// separate poll paths; keep polling until both have landed
			// rather than judging the counter at first skew sighting.
			if st.ReloadFailures > 0 && st.LastReloadKind == "epoch-skew" {
				break
			}
		}
		if time.Now().After(skewDeadline) {
			t.Fatal("router did not surface epoch skew within 60s of a one-replica hot swap")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := reps[1][1].proc.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	skewDeadline = time.Now().Add(60 * time.Second)
	// Skew is an intra-shard signal: shard 0 legitimately stays on epoch
	// 1 while shard 1 moves to 2, so only shard 1's convergence (and the
	// global flag dropping) marks the swap complete.
	for {
		st, err := fetchRouterStatsz(client, router)
		if err == nil && !st.Router.EpochSkew && st.Router.EpochMax >= 2 {
			break
		}
		if time.Now().After(skewDeadline) {
			t.Fatal("epoch skew did not clear within 60s of swapping the second replica")
		}
		time.Sleep(50 * time.Millisecond)
	}

	wg.Wait()
	if failed != 0 {
		t.Fatalf("%d requests failed during the kill + hot-swap load", failed)
	}
	if mismatched != 0 {
		t.Fatalf("%d unflagged responses diverged from Index.Recommend", mismatched)
	}
	// Shard 0 always has a live replica, so partials should be rare
	// (only a request that loses every try inside its deadline window);
	// an unbounded count would mean failover is not actually working.
	if max := int64(clients); partials > max {
		t.Fatalf("%d partial responses out of %d requests: failover is not absorbing a single replica loss", partials, clients*perClient)
	}

	// Phase 3: the router noticed the dead replica (3/4 healthy) but
	// still reports "ok" — every shard retains a live replica, so the
	// tier can answer fully.
	var h struct {
		Status          string `json:"status"`
		ReplicasHealthy int    `json:"replicas_healthy"`
		ReplicasTotal   int    `json:"replicas_total"`
	}
	healthDeadline := time.Now().Add(15 * time.Second)
	for {
		resp, err = client.Get(router + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if h.Status == "ok" && h.ReplicasHealthy == 3 && h.ReplicasTotal == 4 {
			break
		}
		if time.Now().After(healthDeadline) {
			t.Fatalf("router healthz after replica kill: %+v (want ok 3/4)", h)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 4: graceful drain, router first, then the surviving shards.
	for _, proc := range []*exec.Cmd{routerProc, reps[0][1].proc, reps[1][0].proc, reps[1][1].proc} {
		if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- proc.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("c2serve did not exit cleanly on SIGTERM: %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("c2serve did not exit within 20s of SIGTERM")
		}
	}
}
