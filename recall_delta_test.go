package c2knn_test

import (
	"math"
	"testing"

	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/delta"
	"c2knn/internal/goldfinger"
	"c2knn/internal/recommend"
	"c2knn/internal/synth"
)

// TestRecallDeltaInBand is the quality gate for incremental maintenance:
// a graph grown through the delta overlay must recommend as well as one
// built from scratch. It rebuilds the golden configuration minus the
// last 64 users, re-inserts exactly their training profiles through
// Upsert (localized re-solve, no rebuild), folds the overlay into fresh
// artifacts with Compact, and evaluates the compacted graph on the same
// fold as TestRecallGolden. The result must sit in the same pinned band
// — if localized re-solving were cutting corners (wrong clusters, stale
// reverse edges, lossy compaction), 21% of the users would carry
// degraded rows and recall would leave the band.
//
// Held-out users are the *last* ids so the overlay's contiguous id
// assignment reproduces the original ids, letting the full fold's test
// sets line up without any remapping.
func TestRecallDeltaInBand(t *testing.T) {
	cfg, ok := synth.ByName("ml1M")
	if !ok {
		t.Fatal("ml1M preset missing")
	}
	d := synth.Generate(cfg.Scale(0.05))
	folds := recommend.Split(d, 5, 42)
	f := folds[0]

	const heldOut = 64
	n := f.Train.NumUsers()
	if n <= heldOut {
		t.Fatalf("fold has only %d users", n)
	}
	base := dataset.New(f.Train.Name, f.Train.Profiles[:n-heldOut], f.Train.NumItems)
	gf, err := goldfinger.New(base, 1024, 0x60fd)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := core.Build(base, gf, core.Options{K: 30, Workers: 4, Seed: 42})

	ov, err := delta.Attach(g.Freeze(), base, gf, delta.Config{GFSeed: 0x60fd})
	if err != nil {
		t.Fatal(err)
	}
	for u := n - heldOut; u < n; u++ {
		res, err := ov.Upsert(-1, f.Train.Profiles[u])
		if err != nil {
			t.Fatalf("upsert user %d: %v", u, err)
		}
		if int(res.User) != u {
			t.Fatalf("upsert assigned id %d, want %d (id stability broken)", res.User, u)
		}
	}
	cmp, err := ov.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Train.NumUsers() != n {
		t.Fatalf("compacted to %d users, want %d", cmp.Train.NumUsers(), n)
	}

	got := recommend.EvalRecallFrozen(f, cmp.Graph, 30, 4)
	t.Logf("incremental recall@30 = %.16f (pinned %.4f ± %.3f)", got, goldenRecall, goldenTolerance)
	if math.Abs(got-goldenRecall) > goldenTolerance {
		t.Fatalf("incremental recall@30 = %.4f, pinned %.4f ± %.3f — delta-grown graphs have drifted from rebuild quality",
			got, goldenRecall, goldenTolerance)
	}
}
