package c2knn_test

import (
	"math"
	"testing"

	"c2knn/internal/core"
	"c2knn/internal/goldfinger"
	"c2knn/internal/recommend"
	"c2knn/internal/synth"
)

// TestRecallGolden pins end-to-end recommendation quality as a tier-1
// regression gate: a fixed-seed synthetic preset, a deterministic C²
// build, and a pinned EvalRecall value. Any change that silently
// degrades graph quality — a kernel bug, a clustering change, a merge
// tie-break regression — moves this number and fails `go test ./...`
// rather than waiting for someone to read a benchmark report.
//
// The pinned value was measured on the deterministic configuration
// below (single worker, pipeline disabled: bit-identical across runs
// and platforms, since every stage is seeded and no map iteration or
// goroutine interleaving reaches the result). The ±0.005 band absorbs
// legitimate float-ordering jitter if the evaluation is ever
// parallelized, while still catching quality drift an order of
// magnitude smaller than any change worth worrying about.
//
// If this fails because of an *intentional* quality-affecting change,
// re-measure with the probe below and update the constant in the same
// commit, saying why:
//
//	go test -run TestRecallGolden -v .   # logs the measured value
const (
	goldenRecall    = 0.5155
	goldenTolerance = 0.005
)

func TestRecallGolden(t *testing.T) {
	cfg, ok := synth.ByName("ml1M")
	if !ok {
		t.Fatal("ml1M preset missing")
	}
	d := synth.Generate(cfg.Scale(0.05))
	folds := recommend.Split(d, 5, 42)
	f := folds[0]
	gf, err := goldfinger.New(f.Train, 1024, 0x60fd)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := core.Build(f.Train, gf, core.Options{
		K: 30, Workers: 1, Seed: 42, DisablePipeline: true,
	})
	got := recommend.EvalRecall(f, g, 30, 1)
	t.Logf("recall@30 = %.16f (pinned %.4f ± %.3f)", got, goldenRecall, goldenTolerance)
	if math.Abs(got-goldenRecall) > goldenTolerance {
		t.Fatalf("recall@30 = %.4f, pinned %.4f ± %.3f — quality drifted; if intentional, re-pin the constant and justify it in the commit",
			got, goldenRecall, goldenTolerance)
	}

	// The pipelined multi-worker build must deliver the same quality:
	// PR 2's equivalence guarantee says only float summation order may
	// differ, so it shares the golden band.
	gp, _ := core.Build(f.Train, gf, core.Options{K: 30, Workers: 4, Seed: 42})
	gotP := recommend.EvalRecall(f, gp, 30, 4)
	if math.Abs(gotP-goldenRecall) > goldenTolerance {
		t.Fatalf("pipelined recall@30 = %.4f, pinned %.4f ± %.3f", gotP, goldenRecall, goldenTolerance)
	}
}
