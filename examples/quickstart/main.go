// Quickstart: generate a MovieLens-like dataset, build its KNN graph with
// Cluster-and-Conquer, and inspect the result — the fastest path through
// the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"c2knn"
)

func main() {
	// A 10%-scale MovieLens1M lookalike (≈ 600 users). Presets: ml1M,
	// ml10M, ml20M, AM, DBLP, GW.
	d, err := c2knn.Generate("ml1M", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users, %d items, %d ratings\n",
		d.NumUsers(), d.NumItems, d.NumRatings())

	// GoldFinger fingerprints estimate Jaccard fast (the paper's setup).
	sim, err := c2knn.NewGoldFinger(d, 1024)
	if err != nil {
		log.Fatal(err)
	}

	// Build the KNN graph with C². The zero options are the paper's
	// defaults (k=30, b=4096, t=8, N=2000).
	start := time.Now()
	g, stats := c2knn.BuildC2(d, sim, c2knn.BuildOptions{K: 10})
	fmt.Printf("C2: %d clusters (%d splits, largest %d) in %v\n",
		stats.Clusters, stats.Splits, stats.MaxCluster, time.Since(start).Round(time.Millisecond))

	// Inspect one user's neighborhood.
	fmt.Println("\nuser 0's nearest neighbors (id, estimated Jaccard):")
	for _, nb := range g.Neighbors(0) {
		fmt.Printf("  %5d  %.3f\n", nb.ID, nb.Sim)
	}

	// How good is the approximation? Compare against the exact graph.
	raw := c2knn.ExactJaccard(d)
	exact := c2knn.BuildBruteForce(d, raw, 10)
	fmt.Printf("\nKNN quality vs exact graph: %.3f (1.0 = indistinguishable)\n",
		c2knn.Quality(g, exact, raw))
}
