// Newsrec simulates the use case that motivates the paper's introduction:
// an online news recommender where freshness matters, so the KNN graph
// must be (re)built quickly as new data arrives. The example builds the
// graph with the Hyrec greedy baseline and with Cluster-and-Conquer,
// compares wall-clock time, and shows that recommendation recall is
// essentially unchanged — the paper's Table III story.
package main

import (
	"fmt"
	"log"
	"time"

	"c2knn"
)

const (
	k    = 30 // neighborhood size
	nRec = 30 // items recommended per user
)

func main() {
	// An AmazonMovies-like sparse catalogue: many items, short profiles —
	// the regime where clustering pays off most against greedy baselines.
	d, err := c2knn.Generate("AM", 0.08)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d readers, %d articles, %d clicks\n\n",
		d.NumUsers(), d.NumItems, d.NumRatings())

	// Hold out 20% of every reader's history to measure recall.
	folds := c2knn.SplitFolds(d, 5, 1)
	fold := folds[0]
	sim, err := c2knn.NewGoldFinger(fold.Train, 1024)
	if err != nil {
		log.Fatal(err)
	}

	type run struct {
		name  string
		build func() *c2knn.Graph
	}
	runs := []run{
		{"Hyrec (greedy baseline)", func() *c2knn.Graph {
			return c2knn.BuildHyrec(fold.Train, sim, k)
		}},
		{"Cluster-and-Conquer", func() *c2knn.Graph {
			g, _ := c2knn.BuildC2(fold.Train, sim, c2knn.BuildOptions{K: k})
			return g
		}},
	}
	for _, r := range runs {
		start := time.Now()
		g := r.build()
		elapsed := time.Since(start)
		recall := c2knn.EvalRecall(fold, g, nRec)
		fmt.Printf("%-26s build %-10v recall@%d %.3f\n",
			r.name, elapsed.Round(time.Millisecond), nRec, recall)
	}
	fmt.Println("\nC2 rebuilds the graph fastest — fresh stories reach the")
	fmt.Println("recommender sooner, at essentially the same recall.")
}
