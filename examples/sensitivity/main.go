// Sensitivity reproduces a miniature of the paper's §VI analysis from the
// public API: it sweeps the number of hash functions t (Fig. 6) and the
// maximum cluster size N (Fig. 7) on a dense MovieLens-like dataset and
// prints time×quality trade-off points as CSV, ready to plot.
package main

import (
	"fmt"
	"log"
	"time"

	"c2knn"
)

const k = 20

func main() {
	d, err := c2knn.Generate("ml10M", 0.06)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := c2knn.NewGoldFinger(d, 1024)
	if err != nil {
		log.Fatal(err)
	}
	raw := c2knn.ExactJaccard(d)
	exact := c2knn.BuildBruteForce(d, raw, k)

	fmt.Println("sweep,param,value,time_ms,quality")

	// Fig. 6 shape: more hash functions trade time for quality, with
	// diminishing returns beyond t ≈ 8.
	for _, t := range []int{1, 2, 4, 8, 10} {
		g, _ := timeBuild(d, sim, c2knn.BuildOptions{K: k, T: t, MaxClusterSize: 150}, func(ms float64, g *c2knn.Graph) {
			fmt.Printf("hash-functions,t,%d,%.1f,%.3f\n", t, ms, c2knn.Quality(g, exact, raw))
		})
		_ = g
	}

	// Fig. 7 shape: larger N trades time for quality.
	for _, n := range []int{50, 100, 300, 600, 1200} {
		g, _ := timeBuild(d, sim, c2knn.BuildOptions{K: k, T: 8, MaxClusterSize: n}, func(ms float64, g *c2knn.Graph) {
			fmt.Printf("max-cluster,N,%d,%.1f,%.3f\n", n, ms, c2knn.Quality(g, exact, raw))
		})
		_ = g
	}
}

// timeBuild runs BuildC2 and reports the elapsed milliseconds through the
// callback.
func timeBuild(d *c2knn.Dataset, sim c2knn.Similarity, opts c2knn.BuildOptions, report func(float64, *c2knn.Graph)) (*c2knn.Graph, c2knn.C2Stats) {
	start := time.Now()
	g, stats := c2knn.BuildC2(d, sim, opts)
	report(float64(time.Since(start).Microseconds())/1000, g)
	return g, stats
}
