// Coauthors works on a DBLP-like co-authorship dataset (§IV-A3 of the
// paper): profiles are co-author lists, and the KNN graph links
// researchers with overlapping collaboration circles. The example finds
// "academic siblings" — the authors most similar to a given one — and
// shows how the similarity metric can be swapped (Jaccard vs cosine)
// without touching the algorithm.
package main

import (
	"fmt"
	"log"

	"c2knn"
)

func main() {
	d, err := c2knn.Generate("DBLP", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-authorship network: %d authors, %d collaborator ids, %d links\n\n",
		d.NumUsers(), d.NumItems, d.NumRatings())

	// Co-authorship profiles are short, so exact Jaccard is affordable
	// here — no GoldFinger needed (the paper's Table V "raw data" mode).
	jac := c2knn.ExactJaccard(d)
	g, stats := c2knn.BuildC2(d, jac, c2knn.BuildOptions{
		K: 10,
		T: 15, // the paper uses 15 hash functions on DBLP (§IV-C)
	})
	fmt.Printf("graph built from %d clusters (%d recursive splits)\n\n",
		stats.Clusters, stats.Splits)

	// Show the academic siblings of a few authors.
	for _, author := range []int32{0, 42, 1000} {
		if int(author) >= d.NumUsers() {
			continue
		}
		fmt.Printf("authors closest to #%d (|profile| = %d):\n", author, len(d.Profile(author)))
		for i, nb := range g.Neighbors(author) {
			if i == 3 {
				break
			}
			fmt.Printf("  #%-6d jaccard=%.3f\n", nb.ID, nb.Sim)
		}
	}

	// The same pipeline under cosine similarity — any metric obeying the
	// paper's f_sim requirements plugs in.
	cos := c2knn.Cosine(d)
	g2, _ := c2knn.BuildC2(d, cos, c2knn.BuildOptions{K: 10, T: 15})
	same := 0
	for _, nb := range g2.Neighbors(0) {
		for _, nb2 := range g.Neighbors(0) {
			if nb.ID == nb2.ID {
				same++
				break
			}
		}
	}
	fmt.Printf("\ncosine vs jaccard agreement on author 0's top-10: %d/10\n", same)
}
