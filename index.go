package c2knn

import (
	"fmt"
	"sync"

	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/persist"
	"c2knn/internal/recommend"
)

// Typed snapshot-loading failures, re-exported from the persistence
// layer so daemons can react to the two cases differently: a version
// mismatch means "this snapshot needs a rebuild with the current
// binary", while corruption means "this file is damaged — restore it".
// Test with errors.Is against errors returned by LoadIndex.
var (
	// ErrSnapshotVersion tags snapshots written by an incompatible
	// format version (rebuild needed).
	ErrSnapshotVersion = persist.ErrVersion
	// ErrSnapshotCorrupt tags malformed or damaged snapshot bytes
	// (bad magic, checksum mismatch, truncation, invalid structure).
	ErrSnapshotCorrupt = persist.ErrCorrupt
)

// FrozenGraph is the immutable CSR serving form of a Graph; see Freeze.
type FrozenGraph = knng.Frozen

// Freeze flattens g into its immutable serving representation: flat
// neighbor-id and similarity arrays with per-user offsets, each
// adjacency pre-sorted by decreasing similarity. A FrozenGraph answers
// Neighbors queries without allocating and is safe for unlimited
// concurrent readers.
func Freeze(g *Graph) *FrozenGraph { return g.Freeze() }

// Index is the serving bundle of the §V-B application: a frozen KNN
// graph, the training dataset its recommendations score against, and
// (optionally) the GoldFinger fingerprints the graph was built with.
// All methods are safe for concurrent use — the graph and dataset are
// immutable and per-query scratch is pooled — so one Index can serve
// any number of request goroutines. Build one with NewIndex, persist
// it with Save, and load it in milliseconds with LoadIndex: the
// build/serve split that lets one expensive graph construction serve
// many processes.
type Index struct {
	graph   *knng.Frozen
	train   *dataset.Dataset
	gf      *goldfinger.Set
	scorers sync.Pool
}

// NewIndex freezes g and bundles it with its training dataset. sim may
// carry the GoldFinger provider the graph was built with (it is kept
// and persisted if it is a *goldfinger.Set); pass nil otherwise.
func NewIndex(g *Graph, train *Dataset, sim Similarity) (*Index, error) {
	if g == nil || train == nil {
		return nil, fmt.Errorf("c2knn: index needs both a graph and a training dataset")
	}
	if g.NumUsers() != train.NumUsers() {
		return nil, fmt.Errorf("c2knn: graph has %d users, dataset %d", g.NumUsers(), train.NumUsers())
	}
	gf, _ := sim.(*goldfinger.Set)
	return newFrozenIndex(g.Freeze(), train, gf)
}

func newFrozenIndex(f *knng.Frozen, train *dataset.Dataset, gf *goldfinger.Set) (*Index, error) {
	ix := &Index{graph: f, train: train, gf: gf}
	ix.scorers.New = func() any { return recommend.NewScorer(train.NumItems) }
	return ix, nil
}

// LoadIndex reads an Index from a snapshot file written by Save (or by
// c2build -snap). The snapshot must carry at least a graph and a
// dataset; decoding validates structure, checksums and cross-section
// consistency, so a corrupt file returns an error and never a
// partially usable index.
func LoadIndex(path string) (*Index, error) {
	snap, err := persist.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if snap.Graph == nil || snap.Train == nil {
		return nil, fmt.Errorf("c2knn: snapshot %s lacks a graph or dataset section; not servable", path)
	}
	return newFrozenIndex(snap.Graph, snap.Train, snap.GoldFinger)
}

// Save writes the index to path in the snapshot format (atomically:
// encode to a temp file, then rename).
func (ix *Index) Save(path string) error {
	return persist.WriteFile(path, &persist.Snapshot{
		Graph:      ix.graph,
		Train:      ix.train,
		GoldFinger: ix.gf,
	})
}

// NumUsers returns the number of users the index serves.
func (ix *Index) NumUsers() int { return ix.graph.NumUsers() }

// K returns the neighborhood bound the graph was built with.
func (ix *Index) K() int { return ix.graph.K }

// Graph returns the frozen graph. Read-only.
func (ix *Index) Graph() *FrozenGraph { return ix.graph }

// Train returns the training dataset. Read-only.
func (ix *Index) Train() *Dataset { return ix.train }

// Similarity returns the fingerprint provider bundled with the index,
// or nil when the snapshot carried none.
func (ix *Index) Similarity() Similarity {
	if ix.gf == nil {
		return nil
	}
	return ix.gf
}

// valid reports whether u is a user this index serves. The Index
// methods are the request-facing surface, so an out-of-range id — a
// malformed or stale request — yields an empty result rather than an
// index-out-of-range panic taking down the serving process. (The
// underlying FrozenGraph stays unguarded: internal callers iterate
// known-valid ids on hot paths.)
func (ix *Index) valid(u int32) bool {
	return u >= 0 && int(u) < ix.graph.NumUsers()
}

// Neighbors returns views of u's neighbor ids and similarities, sorted
// by decreasing similarity, or empty views when u is out of range.
// Zero allocations; the slices alias index storage and must not be
// mutated.
func (ix *Index) Neighbors(u int32) (ids []int32, sims []float32) {
	if !ix.valid(u) {
		return nil, nil
	}
	return ix.graph.Neighbors(u)
}

// TopK returns u's best min(k, degree) neighbors as Neighbor values,
// or nil when u is out of range.
func (ix *Index) TopK(u int32, k int) []Neighbor {
	if !ix.valid(u) {
		return nil
	}
	return ix.graph.TopK(u, k, nil)
}

// Recommend returns up to n items for user u by user-based
// collaborative filtering over the frozen graph: items in neighbors'
// training profiles (but not u's own), scored by the sum of the
// recommending neighbors' similarities, ties broken by ascending item
// id. Out-of-range users get nil. Safe for concurrent use; scoring
// scratch is pooled per calling goroutine, so steady-state cost is the
// returned slice only.
func (ix *Index) Recommend(u int32, n int) []int32 {
	if !ix.valid(u) {
		return nil
	}
	sc := ix.scorers.Get().(*recommend.Scorer)
	out := sc.Recommend(ix.train, ix.graph, u, n, nil)
	ix.scorers.Put(sc)
	return out
}

// TopKBatch answers TopK for every user of users in one call, sharing a
// single backing array across all per-user result slices (one
// allocation per batch instead of one per user). Out-of-range ids yield
// nil entries. The per-user results are identical to calling TopK user
// by user.
func (ix *Index) TopKBatch(users []int32, k int) [][]Neighbor {
	out := make([][]Neighbor, len(users))
	if k <= 0 {
		return out
	}
	total := 0
	for _, u := range users {
		if !ix.valid(u) {
			continue
		}
		if d := ix.graph.Degree(u); d < k {
			total += d
		} else {
			total += k
		}
	}
	buf := make([]Neighbor, 0, total)
	for i, u := range users {
		if !ix.valid(u) {
			continue
		}
		start := len(buf)
		buf = ix.graph.TopK(u, k, buf)
		out[i] = buf[start:len(buf):len(buf)]
	}
	return out
}

// RecommendBatch answers Recommend for every user of users with one
// pooled Scorer checked out for the whole batch — the serving batch
// path: dense scoring scratch is reused across the batch rather than
// fetched per query. Out-of-range ids yield nil entries. The per-user
// results are identical to calling Recommend user by user.
func (ix *Index) RecommendBatch(users []int32, n int) [][]int32 {
	sc := ix.scorers.Get().(*recommend.Scorer)
	out := sc.RecommendBatch(ix.train, ix.graph, users, n, make([][]int32, 0, len(users)))
	ix.scorers.Put(sc)
	return out
}
