package c2knn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"c2knn/internal/dataset"
	"c2knn/internal/delta"
	"c2knn/internal/goldfinger"
	"c2knn/internal/knng"
	"c2knn/internal/persist"
	"c2knn/internal/recommend"
)

// Typed snapshot-loading failures, re-exported from the persistence
// layer so daemons can react to the two cases differently: a version
// mismatch means "this snapshot needs a rebuild with the current
// binary", while corruption means "this file is damaged — restore it".
// Test with errors.Is against errors returned by LoadIndex.
var (
	// ErrSnapshotVersion tags snapshots written by an incompatible
	// format version (rebuild needed).
	ErrSnapshotVersion = persist.ErrVersion
	// ErrSnapshotCorrupt tags malformed or damaged snapshot bytes
	// (bad magic, checksum mismatch, truncation, invalid structure).
	ErrSnapshotCorrupt = persist.ErrCorrupt
)

// FrozenGraph is the immutable CSR serving form of a Graph; see Freeze.
type FrozenGraph = knng.Frozen

// Freeze flattens g into its immutable serving representation: flat
// neighbor-id and similarity arrays with per-user offsets, each
// adjacency pre-sorted by decreasing similarity. A FrozenGraph answers
// Neighbors queries without allocating and is safe for unlimited
// concurrent readers.
func Freeze(g *Graph) *FrozenGraph { return g.Freeze() }

// Index is the serving bundle of the §V-B application: a frozen KNN
// graph, the training dataset its recommendations score against, and
// (optionally) the GoldFinger fingerprints the graph was built with.
// All methods are safe for concurrent use — the graph and dataset are
// immutable and per-query scratch is pooled — so one Index can serve
// any number of request goroutines. Build one with NewIndex, persist
// it with Save, and load it in milliseconds with LoadIndex: the
// build/serve split that lets one expensive graph construction serve
// many processes.
type Index struct {
	graph   *knng.Frozen
	train   *dataset.Dataset
	gf      *goldfinger.Set
	scorers sync.Pool

	// mapping is non-nil when the artifacts above are views over a
	// memory-mapped snapshot; the Index holds the mapping's creation
	// reference until Close. Nil for built or copy-loaded indexes.
	mapping *persist.Mapping
	closed  atomic.Bool

	// overlay is the optional delta layer for incrementally maintained
	// indexes (see EnableUpserts); nil on plain read-only indexes, where
	// the query paths pay one pointer load for its absence.
	overlay atomic.Pointer[delta.Overlay]
}

// NewIndex freezes g and bundles it with its training dataset. sim may
// carry the GoldFinger provider the graph was built with (it is kept
// and persisted if it is a *goldfinger.Set); pass nil otherwise.
func NewIndex(g *Graph, train *Dataset, sim Similarity) (*Index, error) {
	if g == nil || train == nil {
		return nil, fmt.Errorf("c2knn: index needs both a graph and a training dataset")
	}
	if g.NumUsers() != train.NumUsers() {
		return nil, fmt.Errorf("c2knn: graph has %d users, dataset %d", g.NumUsers(), train.NumUsers())
	}
	gf, _ := sim.(*goldfinger.Set)
	return newFrozenIndex(g.Freeze(), train, gf)
}

func newFrozenIndex(f *knng.Frozen, train *dataset.Dataset, gf *goldfinger.Set) (*Index, error) {
	ix := &Index{graph: f, train: train, gf: gf}
	ix.scorers.New = func() any { return recommend.NewScorer(train.NumItems) }
	return ix, nil
}

// LoadMode selects how LoadIndexMode materializes a snapshot file;
// re-exported from the persistence layer.
type LoadMode = persist.LoadMode

const (
	// LoadAuto memory-maps when the file and platform allow it (v2
	// snapshots on unix little-endian hosts) and copy-decodes otherwise.
	LoadAuto = persist.LoadAuto
	// LoadCopy always decode-and-copies; the index owns heap memory and
	// needs no lifetime discipline.
	LoadCopy = persist.LoadCopy
	// LoadMMap requires the zero-copy mapped path and fails when it is
	// unavailable (v1 file, non-mmap platform).
	LoadMMap = persist.LoadMMap
)

// ParseLoadMode parses "auto" (or ""), "copy", or "mmap" — the values
// the c2serve -load flag and the C2_LOAD environment variable accept.
func ParseLoadMode(s string) (LoadMode, error) { return persist.ParseLoadMode(s) }

// LoadIndex reads an Index from a snapshot file written by Save (or by
// c2build -snap), honoring the C2_LOAD environment variable ("auto"
// when unset). The snapshot must carry at least a graph and a dataset;
// loading validates structure, checksums and cross-section consistency,
// so a corrupt file returns an error and never a partially usable
// index.
//
// The returned index may serve directly from a memory mapping (see
// Mapped); callers that discard an index while other goroutines might
// still be querying it must use the Retain/Release protocol and Close
// it when done. Indexes built in process or copy-loaded are unaffected
// (Close is a no-op, Retain always succeeds).
func LoadIndex(path string) (*Index, error) {
	snap, err := persist.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return indexFromSnapshot(path, snap)
}

// LoadIndexMode is LoadIndex with an explicit load mode, ignoring
// C2_LOAD.
func LoadIndexMode(path string, mode LoadMode) (*Index, error) {
	snap, err := persist.LoadFileMode(path, mode)
	if err != nil {
		return nil, err
	}
	return indexFromSnapshot(path, snap)
}

// indexFromSnapshot wraps a loaded snapshot, taking over its mapping
// reference (if any): from here the Index owns the mapping and releases
// it in Close.
func indexFromSnapshot(path string, snap *persist.Snapshot) (*Index, error) {
	if snap.Graph == nil || snap.Train == nil {
		snap.Close()
		return nil, fmt.Errorf("c2knn: snapshot %s lacks a graph or dataset section; not servable", path)
	}
	ix, err := newFrozenIndex(snap.Graph, snap.Train, snap.GoldFinger)
	if err != nil {
		snap.Close()
		return nil, err
	}
	ix.mapping = snap.Mapping
	return ix, nil
}

// Mapped reports whether the index serves directly from a memory-mapped
// snapshot (and therefore needs the Retain/Release/Close lifetime
// protocol when hot-swapped).
func (ix *Index) Mapped() bool { return ix.mapping != nil }

// Retain takes a reference for the duration of a request, reporting
// success. For unmapped indexes it always succeeds at no cost. For
// mapped indexes it fails once Close has begun tearing the mapping
// down — the caller must then re-resolve the current index (a hot swap
// has replaced this one) instead of touching its views.
func (ix *Index) Retain() bool {
	if ix.mapping == nil {
		return true
	}
	// The closed check, not just the refcount, gates new queries: while
	// earlier retains are still draining the mapping's count stays
	// positive, and without this a request racing a hot swap could start
	// on the retired epoch instead of re-resolving the current one.
	if ix.closed.Load() {
		return false
	}
	return ix.mapping.Retain()
}

// Release drops a reference taken by a successful Retain.
func (ix *Index) Release() {
	if ix.mapping != nil {
		ix.mapping.Release()
	}
}

// Close releases the index's own reference to its backing mapping; the
// mapping is unmapped once the last in-flight Retain is Released.
// Queries must not start after Close (Retain refuses), but queries that
// retained before Close drain safely. Idempotent; a no-op for unmapped
// indexes.
func (ix *Index) Close() error {
	if ix.mapping == nil || !ix.closed.CompareAndSwap(false, true) {
		return nil
	}
	ix.mapping.Release()
	return nil
}

// Save writes the index to path in the snapshot format (atomically:
// encode to a temp file, then rename). Only the base artifacts are
// written; an attached delta overlay is not folded in — use CompactInto
// for that.
func (ix *Index) Save(path string) error {
	return persist.WriteFile(path, &persist.Snapshot{
		Graph:      ix.graph,
		Train:      ix.train,
		GoldFinger: ix.gf,
	})
}

// NumUsers returns the number of users the index serves, including
// delta users absorbed through Upsert.
func (ix *Index) NumUsers() int {
	if ov := ix.overlay.Load(); ov != nil {
		return ov.View().NumUsers()
	}
	return ix.graph.NumUsers()
}

// K returns the neighborhood bound the graph was built with.
func (ix *Index) K() int { return ix.graph.K }

// Graph returns the frozen graph. Read-only.
func (ix *Index) Graph() *FrozenGraph { return ix.graph }

// Train returns the training dataset. Read-only.
func (ix *Index) Train() *Dataset { return ix.train }

// Similarity returns the fingerprint provider bundled with the index,
// or nil when the snapshot carried none.
func (ix *Index) Similarity() Similarity {
	if ix.gf == nil {
		return nil
	}
	return ix.gf
}

// valid reports whether u is a user this index serves. The Index
// methods are the request-facing surface, so an out-of-range id — a
// malformed or stale request — yields an empty result rather than an
// index-out-of-range panic taking down the serving process. (The
// underlying FrozenGraph stays unguarded: internal callers iterate
// known-valid ids on hot paths.)
func (ix *Index) valid(u int32) bool {
	return u >= 0 && int(u) < ix.graph.NumUsers()
}

// Neighbors returns views of u's neighbor ids and similarities, sorted
// by decreasing similarity, or empty views when u is out of range.
// Zero allocations; the slices alias index storage and must not be
// mutated. With upserts enabled the row is the merged base + delta
// view — patched and delta users resolve to their overlay rows, still
// allocation-free.
func (ix *Index) Neighbors(u int32) (ids []int32, sims []float32) {
	if ov := ix.overlay.Load(); ov != nil {
		return ov.View().Neighbors(u)
	}
	if !ix.valid(u) {
		return nil, nil
	}
	return ix.graph.Neighbors(u)
}

// TopK returns u's best min(k, degree) neighbors as Neighbor values,
// or nil when u is out of range.
func (ix *Index) TopK(u int32, k int) []Neighbor {
	if ov := ix.overlay.Load(); ov != nil {
		return topKView(ov.View(), u, k, nil)
	}
	if !ix.valid(u) {
		return nil
	}
	return ix.graph.TopK(u, k, nil)
}

// topKView is Frozen.TopK over a merged overlay view.
func topKView(v *delta.View, u int32, k int, dst []Neighbor) []Neighbor {
	ids, sims := v.Neighbors(u)
	if k > len(ids) {
		k = len(ids)
	}
	for i := 0; i < k; i++ {
		dst = append(dst, Neighbor{ID: ids[i], Sim: float64(sims[i])})
	}
	return dst
}

// Recommend returns up to n items for user u by user-based
// collaborative filtering over the frozen graph: items in neighbors'
// training profiles (but not u's own), scored by the sum of the
// recommending neighbors' similarities, ties broken by ascending item
// id. Out-of-range users get nil. Safe for concurrent use; scoring
// scratch is pooled per calling goroutine, so steady-state cost is the
// returned slice only.
func (ix *Index) Recommend(u int32, n int) []int32 {
	if ov := ix.overlay.Load(); ov != nil {
		v := ov.View()
		if !v.Valid(u) {
			return nil
		}
		sc := ix.scorers.Get().(*recommend.Scorer)
		out := sc.RecommendSource(v, u, n, nil)
		ix.scorers.Put(sc)
		return out
	}
	if !ix.valid(u) {
		return nil
	}
	sc := ix.scorers.Get().(*recommend.Scorer)
	out := sc.Recommend(ix.train, ix.graph, u, n, nil)
	ix.scorers.Put(sc)
	return out
}

// TopKBatch answers TopK for every user of users in one call, sharing a
// single backing array across all per-user result slices (one
// allocation per batch instead of one per user). Out-of-range ids yield
// nil entries. The per-user results are identical to calling TopK user
// by user.
func (ix *Index) TopKBatch(users []int32, k int) [][]Neighbor {
	out := make([][]Neighbor, len(users))
	if k <= 0 {
		return out
	}
	if ov := ix.overlay.Load(); ov != nil {
		v := ov.View()
		var buf []Neighbor
		for i, u := range users {
			start := len(buf)
			buf = topKView(v, u, k, buf)
			if len(buf) > start {
				out[i] = buf[start:len(buf):len(buf)]
			} else if v.Valid(u) {
				out[i] = []Neighbor{}
			}
		}
		return out
	}
	total := 0
	for _, u := range users {
		if !ix.valid(u) {
			continue
		}
		if d := ix.graph.Degree(u); d < k {
			total += d
		} else {
			total += k
		}
	}
	buf := make([]Neighbor, 0, total)
	for i, u := range users {
		if !ix.valid(u) {
			continue
		}
		start := len(buf)
		buf = ix.graph.TopK(u, k, buf)
		out[i] = buf[start:len(buf):len(buf)]
	}
	return out
}

// RecommendBatch answers Recommend for every user of users with one
// pooled Scorer checked out for the whole batch — the serving batch
// path: dense scoring scratch is reused across the batch rather than
// fetched per query. Out-of-range ids yield nil entries. The per-user
// results are identical to calling Recommend user by user.
func (ix *Index) RecommendBatch(users []int32, n int) [][]int32 {
	sc := ix.scorers.Get().(*recommend.Scorer)
	if ov := ix.overlay.Load(); ov != nil {
		v := ov.View()
		out := make([][]int32, 0, len(users))
		for _, u := range users {
			if !v.Valid(u) {
				out = append(out, nil)
				continue
			}
			out = append(out, sc.RecommendSource(v, u, n, nil))
		}
		ix.scorers.Put(sc)
		return out
	}
	out := sc.RecommendBatch(ix.train, ix.graph, users, n, make([][]int32, 0, len(users)))
	ix.scorers.Put(sc)
	return out
}
