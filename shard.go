package c2knn

import (
	"fmt"

	"c2knn/internal/frh"
	"c2knn/internal/persist"
)

// Sharded serving: the user → shard mapping and the snapshot
// partitioner, re-exported so operators and tools (cmd/c2build,
// cmd/c2serve, the experiments harness) share one definition with the
// router instead of duplicating hash logic. See internal/frh/shard.go
// for the contract: ShardKey is a stable pure function of the user id,
// and contiguous bucket ranges map to shards.

// DefaultShardBuckets is the default shard-key space size.
const DefaultShardBuckets = frh.DefaultShardBuckets

// BucketRange is a contiguous inclusive range of shard-key buckets; a
// shard owns the users whose ShardKey falls in its range.
type BucketRange = frh.BucketRange

// ShardKey maps a user id to its bucket in [1, buckets]. Stable across
// processes and binary versions — the wire contract routers and
// partitioners agree on.
func ShardKey(u int32, buckets int) uint32 { return frh.ShardKey(u, buckets) }

// PartitionShardBuckets splits the bucket space [1, buckets] into
// shards contiguous near-equal ranges.
func PartitionShardBuckets(buckets, shards int) []BucketRange {
	return frh.PartitionBuckets(buckets, shards)
}

// ShardOf returns the index of the range owning u's bucket, or -1 when
// no range does.
func ShardOf(u int32, buckets int, ranges []BucketRange) int {
	return frh.ShardOf(u, buckets, ranges)
}

// PartitionIndex splits ix into one serving index per bucket range:
// each keeps the full dataset and fingerprints by reference (scoring
// needs neighbors' profiles) but only its owned users' graph rows, so
// the graph — the artifact that grows with the corpus — partitions
// across shards. Also returns the per-shard owned-user counts. The
// in-process twin of c2build -shards; tests and the experiments
// harness use it to stand up a sharded tier without touching disk.
func PartitionIndex(ix *Index, buckets int, ranges []BucketRange) ([]*Index, []int, error) {
	snaps, users, err := persist.PartitionSnapshot(&persist.Snapshot{
		Graph: ix.graph, Train: ix.train, GoldFinger: ix.gf,
	}, buckets, ranges)
	if err != nil {
		return nil, nil, fmt.Errorf("c2knn: partition index: %w", err)
	}
	out := make([]*Index, len(snaps))
	for i, s := range snaps {
		out[i], err = newFrozenIndex(s.Graph, s.Train, s.GoldFinger)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, users, nil
}
