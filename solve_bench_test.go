// The BenchmarkLocalSolve family tracks what the blocked row kernels
// buy inside one cluster solve: the *Scalar variants run the frozen
// pair-at-a-time formulations (one Sim call plus two ungated heap
// inserts per pair — the hot loop as it stood before the blocked
// kernels landed), the *Blocked variants run the production path
// (SimRow/SimBatch row scoring, dense threshold gates, panel-blocked
// sweep). Both share the gathered kernel and per-worker scratch, so the
// ratio isolates exactly the row-batching + threshold-gating win.
//
// Brute force is measured at two cluster sizes: 400 is the historical
// kernel-bench cluster, 1600 sits near the splitting threshold N=2000 —
// and since a solve costs O(m²), clusters of that size are where a real
// build's brute-force wall-clock concentrates. scripts/bench-solve.sh
// records the same comparison as benchmarks/BENCH_solve.json and
// bench-compare.sh gates the speedup and the zero-allocation contract.
// See EXPERIMENTS.md for measured numbers and the discussion of where
// the remaining time goes.
package c2knn_test

import (
	"fmt"
	"math/rand"
	"testing"

	"c2knn/internal/bruteforce"
	"c2knn/internal/hyrec"
	"c2knn/internal/similarity"
)

// solveCluster draws a deterministic pseudo-cluster of size m from the
// kernel-bench dataset and gathers it.
func solveCluster(b *testing.B, m int, loc *similarity.Local) {
	b.Helper()
	gf, _ := kernelBenchSetup(b)
	rng := rand.New(rand.NewSource(17))
	perm := rng.Perm(kernelBench.data.NumUsers())
	ids := make([]int32, m)
	for i := range ids {
		ids[i] = int32(perm[i])
	}
	similarity.GatherInto(gf, ids, loc)
}

// --- cluster-local brute force: pair-at-a-time vs blocked sweep ------

func BenchmarkLocalSolveBruteForceScalar(b *testing.B) {
	for _, m := range []int{400, 1600} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var loc similarity.Local
			var s bruteforce.Scratch
			solveCluster(b, m, &loc)
			bruteforce.LocalIntoScalar(&loc, 30, &s) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bruteforce.LocalIntoScalar(&loc, 30, &s)
			}
		})
	}
}

func BenchmarkLocalSolveBruteForceBlocked(b *testing.B) {
	for _, m := range []int{400, 1600} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var loc similarity.Local
			var s bruteforce.Scratch
			solveCluster(b, m, &loc)
			bruteforce.LocalInto(&loc, 30, &s) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bruteforce.LocalInto(&loc, 30, &s)
			}
		})
	}
}

// --- cluster-local Hyrec: scalar vs batched candidate scoring --------

func BenchmarkLocalSolveHyrecScalar(b *testing.B) {
	o := hyrec.Options{MaxIter: 5, Seed: 7}
	var loc similarity.Local
	var s hyrec.Scratch
	solveCluster(b, 400, &loc)
	hyrec.LocalIntoScalar(&loc, 30, o, &s) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hyrec.LocalIntoScalar(&loc, 30, o, &s)
	}
}

func BenchmarkLocalSolveHyrecBlocked(b *testing.B) {
	o := hyrec.Options{MaxIter: 5, Seed: 7}
	var loc similarity.Local
	var s hyrec.Scratch
	solveCluster(b, 400, &loc)
	hyrec.LocalInto(&loc, 30, o, &s) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hyrec.LocalInto(&loc, 30, o, &s)
	}
}

// --- row primitive: pairwise scoring through SimRow ------------------

// BenchmarkLocalSolveSimRow complements the pairwise Gathered bench in
// kernel_bench_test.go: the same triangular pair sweep served by whole
// SimRow calls instead of per-pair Sim.
func BenchmarkLocalSolveSimRow(b *testing.B) {
	var loc similarity.Local
	solveCluster(b, 400, &loc)
	m := loc.Len()
	row := make([]float64, m)
	var acc float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := 0; x < m-1; x++ {
			r := row[:m-1-x]
			loc.SimRow(x, x+1, m, r)
			for _, v := range r {
				acc += v
			}
		}
	}
	_ = acc
}
