package c2knn_test

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"c2knn"
)

// buildTestIndex constructs a small C²-built index over the ml1M preset.
func buildTestIndex(tb testing.TB) *c2knn.Index {
	tb.Helper()
	d, err := c2knn.Generate("ml1M", 0.05)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := c2knn.NewGoldFinger(d, 256)
	if err != nil {
		tb.Fatal(err)
	}
	g, _ := c2knn.BuildC2(d, sim, c2knn.BuildOptions{K: 10, Workers: 2, Seed: 42})
	ix, err := c2knn.NewIndex(g, d, sim)
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "index.c2")
	if err := ix.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := c2knn.LoadIndex(path)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if loaded.NumUsers() != ix.NumUsers() || loaded.K() != ix.K() {
		t.Fatalf("loaded index shape (%d users, k=%d), want (%d, %d)",
			loaded.NumUsers(), loaded.K(), ix.NumUsers(), ix.K())
	}
	if loaded.Similarity() == nil {
		t.Fatal("loaded index dropped the GoldFinger provider")
	}
	for u := 0; u < ix.NumUsers(); u++ {
		ids, sims := ix.Neighbors(int32(u))
		lids, lsims := loaded.Neighbors(int32(u))
		if len(ids) != len(lids) {
			t.Fatalf("user %d: loaded degree %d, built %d", u, len(lids), len(ids))
		}
		for i := range ids {
			if ids[i] != lids[i] || sims[i] != lsims[i] {
				t.Fatalf("user %d edge %d differs after round trip", u, i)
			}
		}
	}
	for u := int32(0); u < int32(ix.NumUsers()); u += 17 {
		want := ix.Recommend(u, 10)
		got := loaded.Recommend(u, 10)
		if len(got) != len(want) {
			t.Fatalf("user %d: loaded recommends %d items, built %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d: recommendations differ after round trip", u)
			}
		}
	}
}

// TestIndexRecommendConcurrentMatchesSerial serves recommendations from
// 8 goroutines at once (run under -race in CI) and checks every result
// against the serial path: the pooled-scratch serving layer must be
// both data-race-free and deterministic.
func TestIndexRecommendConcurrentMatchesSerial(t *testing.T) {
	ix := buildTestIndex(t)
	n := ix.NumUsers()
	serial := make([][]int32, n)
	for u := 0; u < n; u++ {
		serial[u] = ix.Recommend(int32(u), 20)
	}
	const workers = 8
	concurrent := make([][]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < n; u += workers {
				concurrent[u] = ix.Recommend(int32(u), 20)
			}
		}(w)
	}
	wg.Wait()
	for u := 0; u < n; u++ {
		if len(serial[u]) != len(concurrent[u]) {
			t.Fatalf("user %d: concurrent returned %d items, serial %d", u, len(concurrent[u]), len(serial[u]))
		}
		for i := range serial[u] {
			if serial[u][i] != concurrent[u][i] {
				t.Fatalf("user %d item %d: concurrent %d, serial %d",
					u, i, concurrent[u][i], serial[u][i])
			}
		}
	}
}

func TestIndexNeighborsZeroAlloc(t *testing.T) {
	ix := buildTestIndex(t)
	var sink float32
	allocs := testing.AllocsPerRun(1000, func() {
		ids, sims := ix.Neighbors(3)
		if len(ids) > 0 {
			sink += sims[0]
		}
	})
	if allocs != 0 {
		t.Errorf("Index.Neighbors allocates %.1f per call, want 0", allocs)
	}
	_ = sink
}

func TestIndexTopK(t *testing.T) {
	ix := buildTestIndex(t)
	for u := int32(0); u < 20; u++ {
		top := ix.TopK(u, 3)
		ids, sims := ix.Neighbors(u)
		want := 3
		if len(ids) < want {
			want = len(ids)
		}
		if len(top) != want {
			t.Fatalf("user %d: TopK(3) returned %d, want %d", u, len(top), want)
		}
		for i, nb := range top {
			if nb.ID != ids[i] || nb.Sim != float64(sims[i]) {
				t.Fatalf("user %d: TopK[%d] = %+v, want (%d, %v)", u, i, nb, ids[i], sims[i])
			}
		}
	}
}

// TestIndexBatchMatchesSerial: the batch serving methods must return
// exactly what the single-query methods return, user for user, with
// out-of-range ids mapped to nil entries rather than panics.
func TestIndexBatchMatchesSerial(t *testing.T) {
	ix := buildTestIndex(t)
	users := []int32{0, 7, 3, 3, -1, int32(ix.NumUsers()), 11, 1}
	recs := ix.RecommendBatch(users, 15)
	tops := ix.TopKBatch(users, 4)
	if len(recs) != len(users) || len(tops) != len(users) {
		t.Fatalf("batch lengths %d/%d for %d users", len(recs), len(tops), len(users))
	}
	for i, u := range users {
		wantRec := ix.Recommend(u, 15)
		if len(recs[i]) != len(wantRec) {
			t.Fatalf("user %d: batch recommends %d items, serial %d", u, len(recs[i]), len(wantRec))
		}
		for j := range wantRec {
			if recs[i][j] != wantRec[j] {
				t.Fatalf("user %d: batch item %d = %d, serial %d", u, j, recs[i][j], wantRec[j])
			}
		}
		wantTop := ix.TopK(u, 4)
		if len(tops[i]) != len(wantTop) {
			t.Fatalf("user %d: batch topk %d neighbors, serial %d", u, len(tops[i]), len(wantTop))
		}
		for j := range wantTop {
			if tops[i][j] != wantTop[j] {
				t.Fatalf("user %d: batch topk[%d] = %+v, serial %+v", u, j, tops[i][j], wantTop[j])
			}
		}
	}
	// Degenerate shapes.
	if got := ix.RecommendBatch(nil, 5); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
	if got := ix.TopKBatch([]int32{1, 2}, 0); len(got) != 2 || got[0] != nil || got[1] != nil {
		t.Fatalf("TopKBatch with k=0 = %v, want nil entries", got)
	}
}

// TestIndexOutOfRangeUsers: the request-facing methods must return
// empty results for malformed user ids, not panic.
func TestIndexOutOfRangeUsers(t *testing.T) {
	ix := buildTestIndex(t)
	for _, u := range []int32{-1, int32(ix.NumUsers()), int32(ix.NumUsers()) + 100} {
		if ids, sims := ix.Neighbors(u); ids != nil || sims != nil {
			t.Errorf("Neighbors(%d) = (%v, %v), want empty", u, ids, sims)
		}
		if top := ix.TopK(u, 5); top != nil {
			t.Errorf("TopK(%d) = %v, want nil", u, top)
		}
		if rec := ix.Recommend(u, 5); rec != nil {
			t.Errorf("Recommend(%d) = %v, want nil", u, rec)
		}
	}
}

func TestNewIndexValidates(t *testing.T) {
	d, err := c2knn.Generate("ml1M", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2knn.NewIndex(nil, d, nil); err == nil {
		t.Error("NewIndex accepted a nil graph")
	}
	g := c2knn.BuildBruteForce(d, c2knn.ExactJaccard(d), 5)
	small, err := c2knn.Generate("ml1M", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumUsers() != d.NumUsers() {
		if _, err := c2knn.NewIndex(g, small, nil); err == nil {
			t.Error("NewIndex accepted mismatched user counts")
		}
	}
}

// TestLoadIndexTypedErrors: LoadIndex failures must be classifiable
// with errors.Is, not string matching — a daemon logs "rebuild needed"
// for version skew and "restore the file" for corruption, and batch
// tests assert each class lands on its own sentinel only.
func TestLoadIndexTypedErrors(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "index.c2")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Version skew: the uint32 at offset 8 is the format version (the
	// header is unchecksummed framing, so only the version check sees it).
	skewed := append([]byte(nil), raw...)
	skewed[8] = 0x7f
	if err := os.WriteFile(path, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = c2knn.LoadIndex(path)
	if !errors.Is(err, c2knn.ErrSnapshotVersion) {
		t.Fatalf("version-skewed snapshot: err = %v, want errors.Is ErrSnapshotVersion", err)
	}
	if errors.Is(err, c2knn.ErrSnapshotCorrupt) {
		t.Fatalf("version skew must not also read as corruption: %v", err)
	}

	// Corruption: flip one payload byte; the section checksum catches it.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = c2knn.LoadIndex(path)
	if !errors.Is(err, c2knn.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want errors.Is ErrSnapshotCorrupt", err)
	}
	if errors.Is(err, c2knn.ErrSnapshotVersion) {
		t.Fatalf("corruption must not also read as version skew: %v", err)
	}
}

func TestLoadIndexRejectsGraphlessSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.c2")
	if _, err := c2knn.LoadIndex(path); err == nil {
		t.Error("LoadIndex of a missing file succeeded")
	}
}

// TestLoadIndexModeEquivalence: a zero-copy mapped index and a
// copy-decoded index of the same snapshot must be observationally
// identical — same neighbor lists, same similarity values, same
// recommendations — since the serving layer picks between them purely
// on platform capability.
func TestLoadIndexModeEquivalence(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "index.c2")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	cp, err := c2knn.LoadIndexMode(path, c2knn.LoadCopy)
	if err != nil {
		t.Fatalf("LoadIndexMode(copy): %v", err)
	}
	defer cp.Close()
	if cp.Mapped() {
		t.Fatal("copy-loaded index reports Mapped")
	}
	mm, err := c2knn.LoadIndexMode(path, c2knn.LoadMMap)
	if err != nil {
		t.Skipf("mmap unavailable on this platform: %v", err)
	}
	defer mm.Close()
	if !mm.Mapped() {
		t.Fatal("mmap-loaded index does not report Mapped")
	}
	if mm.NumUsers() != cp.NumUsers() || mm.K() != cp.K() {
		t.Fatalf("index shapes differ: mapped (%d users, k=%d), copy (%d, %d)",
			mm.NumUsers(), mm.K(), cp.NumUsers(), cp.K())
	}
	for u := int32(0); u < int32(cp.NumUsers()); u++ {
		mids, msims := mm.Neighbors(u)
		cids, csims := cp.Neighbors(u)
		if len(mids) != len(cids) {
			t.Fatalf("user %d: mapped degree %d, copy %d", u, len(mids), len(cids))
		}
		for i := range cids {
			if mids[i] != cids[i] || msims[i] != csims[i] {
				t.Fatalf("user %d edge %d differs between load modes", u, i)
			}
		}
	}
	for u := int32(0); u < int32(cp.NumUsers()); u += 13 {
		mrec, crec := mm.Recommend(u, 10), cp.Recommend(u, 10)
		if len(mrec) != len(crec) {
			t.Fatalf("user %d: mapped recommends %d items, copy %d", u, len(mrec), len(crec))
		}
		for i := range crec {
			if mrec[i] != crec[i] {
				t.Fatalf("user %d: recommendations differ between load modes", u)
			}
		}
	}
}

// TestIndexMappedLifecycle drives the Retain/Release/Close discipline a
// hot-swapping server depends on: queries retain around access, Close
// refuses new retains while letting retained queries drain, and a
// built/copy-loaded index is exempt from all of it.
func TestIndexMappedLifecycle(t *testing.T) {
	built := buildTestIndex(t)
	if built.Mapped() {
		t.Fatal("in-process index reports Mapped")
	}
	if !built.Retain() {
		t.Fatal("Retain on an unmapped index must always succeed")
	}
	built.Release()
	if err := built.Close(); err != nil {
		t.Fatalf("Close of an unmapped index: %v", err)
	}
	if !built.Retain() {
		t.Fatal("unmapped index refused Retain after no-op Close")
	}
	built.Release()

	path := filepath.Join(t.TempDir(), "index.c2")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	mm, err := c2knn.LoadIndexMode(path, c2knn.LoadMMap)
	if err != nil {
		t.Skipf("mmap unavailable on this platform: %v", err)
	}
	if !mm.Retain() {
		t.Fatal("Retain on a live mapped index failed")
	}
	// A retained in-flight query survives Close: the mapping drains
	// instead of unmapping under the query's feet.
	if err := mm.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if mm.Retain() {
		t.Fatal("Retain succeeded after Close — new queries must be refused")
	}
	ids, _ := mm.Neighbors(0) // still retained: views remain valid
	_ = ids
	mm.Release()
	if mm.Retain() {
		t.Fatal("mapping resurrected after the last reference drained")
	}
	if err := mm.Close(); err != nil {
		t.Fatalf("second Close must stay a no-op: %v", err)
	}
}
