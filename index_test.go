package c2knn_test

import (
	"path/filepath"
	"sync"
	"testing"

	"c2knn"
)

// buildTestIndex constructs a small C²-built index over the ml1M preset.
func buildTestIndex(tb testing.TB) *c2knn.Index {
	tb.Helper()
	d, err := c2knn.Generate("ml1M", 0.05)
	if err != nil {
		tb.Fatal(err)
	}
	sim, err := c2knn.NewGoldFinger(d, 256)
	if err != nil {
		tb.Fatal(err)
	}
	g, _ := c2knn.BuildC2(d, sim, c2knn.BuildOptions{K: 10, Workers: 2, Seed: 42})
	ix, err := c2knn.NewIndex(g, d, sim)
	if err != nil {
		tb.Fatal(err)
	}
	return ix
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "index.c2")
	if err := ix.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := c2knn.LoadIndex(path)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if loaded.NumUsers() != ix.NumUsers() || loaded.K() != ix.K() {
		t.Fatalf("loaded index shape (%d users, k=%d), want (%d, %d)",
			loaded.NumUsers(), loaded.K(), ix.NumUsers(), ix.K())
	}
	if loaded.Similarity() == nil {
		t.Fatal("loaded index dropped the GoldFinger provider")
	}
	for u := 0; u < ix.NumUsers(); u++ {
		ids, sims := ix.Neighbors(int32(u))
		lids, lsims := loaded.Neighbors(int32(u))
		if len(ids) != len(lids) {
			t.Fatalf("user %d: loaded degree %d, built %d", u, len(lids), len(ids))
		}
		for i := range ids {
			if ids[i] != lids[i] || sims[i] != lsims[i] {
				t.Fatalf("user %d edge %d differs after round trip", u, i)
			}
		}
	}
	for u := int32(0); u < int32(ix.NumUsers()); u += 17 {
		want := ix.Recommend(u, 10)
		got := loaded.Recommend(u, 10)
		if len(got) != len(want) {
			t.Fatalf("user %d: loaded recommends %d items, built %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d: recommendations differ after round trip", u)
			}
		}
	}
}

// TestIndexRecommendConcurrentMatchesSerial serves recommendations from
// 8 goroutines at once (run under -race in CI) and checks every result
// against the serial path: the pooled-scratch serving layer must be
// both data-race-free and deterministic.
func TestIndexRecommendConcurrentMatchesSerial(t *testing.T) {
	ix := buildTestIndex(t)
	n := ix.NumUsers()
	serial := make([][]int32, n)
	for u := 0; u < n; u++ {
		serial[u] = ix.Recommend(int32(u), 20)
	}
	const workers = 8
	concurrent := make([][]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < n; u += workers {
				concurrent[u] = ix.Recommend(int32(u), 20)
			}
		}(w)
	}
	wg.Wait()
	for u := 0; u < n; u++ {
		if len(serial[u]) != len(concurrent[u]) {
			t.Fatalf("user %d: concurrent returned %d items, serial %d", u, len(concurrent[u]), len(serial[u]))
		}
		for i := range serial[u] {
			if serial[u][i] != concurrent[u][i] {
				t.Fatalf("user %d item %d: concurrent %d, serial %d",
					u, i, concurrent[u][i], serial[u][i])
			}
		}
	}
}

func TestIndexNeighborsZeroAlloc(t *testing.T) {
	ix := buildTestIndex(t)
	var sink float32
	allocs := testing.AllocsPerRun(1000, func() {
		ids, sims := ix.Neighbors(3)
		if len(ids) > 0 {
			sink += sims[0]
		}
	})
	if allocs != 0 {
		t.Errorf("Index.Neighbors allocates %.1f per call, want 0", allocs)
	}
	_ = sink
}

func TestIndexTopK(t *testing.T) {
	ix := buildTestIndex(t)
	for u := int32(0); u < 20; u++ {
		top := ix.TopK(u, 3)
		ids, sims := ix.Neighbors(u)
		want := 3
		if len(ids) < want {
			want = len(ids)
		}
		if len(top) != want {
			t.Fatalf("user %d: TopK(3) returned %d, want %d", u, len(top), want)
		}
		for i, nb := range top {
			if nb.ID != ids[i] || nb.Sim != float64(sims[i]) {
				t.Fatalf("user %d: TopK[%d] = %+v, want (%d, %v)", u, i, nb, ids[i], sims[i])
			}
		}
	}
}

// TestIndexOutOfRangeUsers: the request-facing methods must return
// empty results for malformed user ids, not panic.
func TestIndexOutOfRangeUsers(t *testing.T) {
	ix := buildTestIndex(t)
	for _, u := range []int32{-1, int32(ix.NumUsers()), int32(ix.NumUsers()) + 100} {
		if ids, sims := ix.Neighbors(u); ids != nil || sims != nil {
			t.Errorf("Neighbors(%d) = (%v, %v), want empty", u, ids, sims)
		}
		if top := ix.TopK(u, 5); top != nil {
			t.Errorf("TopK(%d) = %v, want nil", u, top)
		}
		if rec := ix.Recommend(u, 5); rec != nil {
			t.Errorf("Recommend(%d) = %v, want nil", u, rec)
		}
	}
}

func TestNewIndexValidates(t *testing.T) {
	d, err := c2knn.Generate("ml1M", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2knn.NewIndex(nil, d, nil); err == nil {
		t.Error("NewIndex accepted a nil graph")
	}
	g := c2knn.BuildBruteForce(d, c2knn.ExactJaccard(d), 5)
	small, err := c2knn.Generate("ml1M", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumUsers() != d.NumUsers() {
		if _, err := c2knn.NewIndex(g, small, nil); err == nil {
			t.Error("NewIndex accepted mismatched user counts")
		}
	}
}

func TestLoadIndexRejectsGraphlessSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.c2")
	if _, err := c2knn.LoadIndex(path); err == nil {
		t.Error("LoadIndex of a missing file succeeded")
	}
}
