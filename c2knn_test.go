package c2knn_test

import (
	"path/filepath"
	"testing"

	"c2knn"
)

func smallDataset(t testing.TB) *c2knn.Dataset {
	t.Helper()
	d, err := c2knn.Generate("ml1M", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateRejectsUnknownPreset(t *testing.T) {
	if _, err := c2knn.Generate("nonsense", 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestGenerateAllPresets(t *testing.T) {
	for _, cfg := range c2knn.Presets() {
		d, err := c2knn.Generate(cfg.Name, 0.01)
		if err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
			continue
		}
		if d.NumUsers() == 0 || d.NumRatings() == 0 {
			t.Errorf("%s: empty dataset", cfg.Name)
		}
	}
}

func TestFullPipelineEndToEnd(t *testing.T) {
	d := smallDataset(t)
	gf, err := c2knn.NewGoldFinger(d, 512)
	if err != nil {
		t.Fatal(err)
	}
	raw := c2knn.ExactJaccard(d)
	exact := c2knn.BuildBruteForce(d, raw, 10)

	type builder struct {
		name string
		fn   func() *c2knn.Graph
	}
	builders := []builder{
		{"C2", func() *c2knn.Graph {
			g, stats := c2knn.BuildC2(d, gf, c2knn.BuildOptions{K: 10})
			if stats.Clusters == 0 {
				t.Error("C2 reported zero clusters")
			}
			return g
		}},
		{"Hyrec", func() *c2knn.Graph { return c2knn.BuildHyrec(d, gf, 10) }},
		{"NNDescent", func() *c2knn.Graph { return c2knn.BuildNNDescent(d, gf, 10) }},
		{"LSH", func() *c2knn.Graph { return c2knn.BuildLSH(d, gf, 10) }},
	}
	for _, b := range builders {
		g := b.fn()
		if g.NumUsers() != d.NumUsers() {
			t.Errorf("%s: wrong graph size", b.name)
		}
		if q := c2knn.Quality(g, exact, raw); q < 0.6 {
			t.Errorf("%s: quality %.3f collapsed", b.name, q)
		}
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	d := smallDataset(t)
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := c2knn.SaveDataset(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := c2knn.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != d.NumUsers() || got.NumRatings() != d.NumRatings() {
		t.Error("dataset round trip lost data")
	}
}

func TestFromRatingsFacade(t *testing.T) {
	d := c2knn.FromRatings("raw", []c2knn.Rating{
		{User: 0, Item: 1, Value: 5},
		{User: 0, Item: 2, Value: 1},
		{User: 1, Item: 1, Value: 4},
	}, c2knn.DatasetOptions{PositiveThreshold: 3})
	if d.NumUsers() != 2 {
		t.Errorf("users = %d, want 2", d.NumUsers())
	}
	if d.NumRatings() != 2 {
		t.Errorf("ratings = %d, want 2 (one filtered)", d.NumRatings())
	}
}

func TestRecommendationFacade(t *testing.T) {
	d := smallDataset(t)
	folds := c2knn.SplitFolds(d, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	f := folds[0]
	gf, err := c2knn.NewGoldFinger(f.Train, 512)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := c2knn.BuildC2(f.Train, gf, c2knn.BuildOptions{K: 10})
	recs := c2knn.Recommend(f.Train, g, 0, 10)
	if len(recs) == 0 {
		t.Error("no recommendations for user 0")
	}
	if r := c2knn.EvalRecall(f, g, 20); r <= 0 {
		t.Errorf("recall = %v, want > 0", r)
	}
}

func TestAvgSimFacade(t *testing.T) {
	d := smallDataset(t)
	raw := c2knn.ExactJaccard(d)
	exact := c2knn.BuildBruteForce(d, raw, 5)
	if c2knn.AvgSim(exact, raw) <= 0 {
		t.Error("exact graph has zero average similarity")
	}
}
