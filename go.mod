module c2knn

go 1.24
