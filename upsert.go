package c2knn

import (
	"errors"
	"fmt"

	"c2knn/internal/delta"
	"c2knn/internal/frh"
	"c2knn/internal/persist"
)

// DefaultGFSeed is the GoldFinger item-hash seed NewGoldFinger builds
// fingerprints with. Snapshots do not record the seed (fingerprints are
// self-contained for scoring), so upsert-enabled indexes assume it
// unless UpsertConfig says otherwise.
const DefaultGFSeed uint32 = 0x60fd

// ErrUpsertsDisabled is returned by the write-path methods of an Index
// whose delta overlay is not enabled (EnableUpserts was never called,
// or the overlay moved to a successor index after a compaction).
var ErrUpsertsDisabled = errors.New("c2knn: upserts are not enabled on this index")

// UpsertConfig parameterizes EnableUpserts. The clustering fields
// should match the parameters the snapshot was built with — placement
// stays correct under any consistent configuration, but matching the
// build's makes an upsert re-solve the very clusters the builder did.
type UpsertConfig struct {
	// B, T, MaxClusterSize and Seed configure the FastRandomHash family
	// used to place incoming profiles (defaults: the paper's B=4096,
	// T=8, N=2000 with seed 0).
	B, T, MaxClusterSize int
	Seed                 int64
	// GFSeed is the fingerprint item-hash seed (default DefaultGFSeed,
	// matching NewGoldFinger and c2build).
	GFSeed uint32
	// MaxItems bounds accepted item ids; see delta.Config.MaxItems.
	MaxItems int32
}

// UpsertResult reports one absorbed upsert; see the delta package for
// field semantics.
type UpsertResult = delta.Result

// DeltaStats is the observability snapshot of an index's delta overlay.
type DeltaStats = delta.Stats

// EnableUpserts attaches a delta overlay to the index, turning it into
// an incrementally maintainable one: Upsert absorbs new users and
// ratings in sub-second time, the query methods serve base + delta
// merged views, and CompactInto folds the delta into a fresh snapshot.
// The index must carry fingerprints (snapshots built without them
// cannot score upserts). Enabling is one-time per index; the overlay
// migrates to successor indexes through AdoptDeltaFrom.
func (ix *Index) EnableUpserts(cfg UpsertConfig) error {
	if ix.gf == nil {
		return fmt.Errorf("c2knn: index carries no fingerprints; rebuild the snapshot with fingerprints to enable upserts")
	}
	if cfg.GFSeed == 0 {
		cfg.GFSeed = DefaultGFSeed
	}
	ov, err := delta.Attach(ix.graph, ix.train, ix.gf, delta.Config{
		K: ix.graph.K,
		FRH: frh.Options{
			B:       cfg.B,
			T:       cfg.T,
			MaxSize: cfg.MaxClusterSize,
			Seed:    cfg.Seed,
		},
		GFSeed:   cfg.GFSeed,
		MaxItems: cfg.MaxItems,
	})
	if err != nil {
		return err
	}
	if !ix.overlay.CompareAndSwap(nil, ov) {
		return errors.New("c2knn: upserts already enabled on this index")
	}
	return nil
}

// Upserts reports whether the index currently has a delta overlay
// attached.
func (ix *Index) Upserts() bool { return ix.overlay.Load() != nil }

// Upsert absorbs one profile into the index without a rebuild: the
// profile is placed via the FastRandomHash buckets and re-solved only
// against its clusters' rows. user < 0 inserts a new user (the assigned
// id — contiguous after the snapshot's ids, stable across compactions —
// is returned); an existing id merges the items into that user's
// profile. The write is visible to every query issued after Upsert
// returns, and to no query that resolved its view before. Safe for
// concurrent use with queries and other upserts.
func (ix *Index) Upsert(user int32, items []int32) (UpsertResult, error) {
	ov := ix.overlay.Load()
	if ov == nil {
		return UpsertResult{}, ErrUpsertsDisabled
	}
	return ov.Upsert(user, items)
}

// DeltaStats snapshots the overlay's depth/age/counter state; ok is
// false when upserts are not enabled.
func (ix *Index) DeltaStats() (DeltaStats, bool) {
	ov := ix.overlay.Load()
	if ov == nil {
		return DeltaStats{}, false
	}
	return ov.Stats(), true
}

// DeltaSeq returns the overlay's current upsert sequence number (0 when
// upserts are not enabled). Serving caches key on it so results
// invalidate as upserts land within an epoch.
func (ix *Index) DeltaSeq() uint64 {
	ov := ix.overlay.Load()
	if ov == nil {
		return 0
	}
	return ov.View().Seq()
}

// CompactInto folds base + delta into fresh artifacts and writes them
// to path as a v2 snapshot (atomically, like Save). The returned marker
// identifies the upsert sequence the snapshot absorbs: load the file
// into a new index and call AdoptDeltaFrom(old, marker) on it to carry
// the overlay — and any upserts that raced in during the fold — across
// the swap. Upserts and queries continue concurrently throughout.
func (ix *Index) CompactInto(path string) (marker uint64, err error) {
	ov := ix.overlay.Load()
	if ov == nil {
		return 0, ErrUpsertsDisabled
	}
	cmp, err := ov.Compact()
	if err != nil {
		return 0, err
	}
	if err := persist.WriteFile(path, &persist.Snapshot{
		Graph:      cmp.Graph,
		Train:      cmp.Train,
		GoldFinger: cmp.GoldFinger,
	}); err != nil {
		return 0, err
	}
	return cmp.Marker, nil
}

// AdoptDeltaFrom migrates old's delta overlay onto ix after a
// compaction: patches the snapshot ix was loaded from already contains
// (sequence ≤ marker) are dropped, later ones survive. Call it on the
// freshly loaded index before swapping it into service, then
// DetachDelta on the old index once it is out of the serving path —
// requests still draining on the old index fall back to its plain base
// reads (memory-safe; at most one request observes pre-upsert staleness
// during the swap).
func (ix *Index) AdoptDeltaFrom(old *Index, marker uint64) error {
	if old == nil {
		return errors.New("c2knn: no index to adopt a delta overlay from")
	}
	ov := old.overlay.Load()
	if ov == nil {
		return ErrUpsertsDisabled
	}
	if ix.gf == nil {
		return errors.New("c2knn: adopting index carries no fingerprints")
	}
	if err := ov.Rebase(ix.graph, ix.train, ix.gf, marker); err != nil {
		return err
	}
	if !ix.overlay.CompareAndSwap(nil, ov) {
		return errors.New("c2knn: index already has a delta overlay")
	}
	return nil
}

// DetachDelta removes the index's delta overlay reference (a no-op when
// none is attached). Queries revert to the plain base snapshot.
func (ix *Index) DetachDelta() { ix.overlay.Store(nil) }
