package c2knn

import (
	"fmt"
	"runtime"

	"c2knn/internal/bruteforce"
	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/hyrec"
	"c2knn/internal/knng"
	"c2knn/internal/lsh"
	"c2knn/internal/nndescent"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

// Dataset is an item-based dataset: one sorted item-id profile per user.
type Dataset = dataset.Dataset

// Rating is a raw (user, item, value) triple; see FromRatings.
type Rating = dataset.Rating

// DatasetOptions controls binarization and filtering of raw ratings.
type DatasetOptions = dataset.Options

// Graph is a directed KNN graph with bounded per-user neighbor lists.
type Graph = knng.Graph

// Neighbor is one edge of a Graph.
type Neighbor = knng.Neighbor

// Similarity computes user-to-user similarities; implementations must be
// safe for concurrent use and must return non-negative, non-NaN values
// (every built-in metric maps into [0, 1]). Degenerate values are
// rejected at neighbor-list insertion — a NaN would otherwise corrupt
// the bounded k-heaps the solvers and the merge rely on — so a signed
// metric must be shifted into [0, ∞) before being used as a provider.
type Similarity = similarity.Provider

// Localizer is the optional fast-path interface a Similarity may
// implement: Gather copies one cluster's data into a reusable LocalSim
// kernel so the local solvers evaluate pair similarities with zero
// interface dispatch. The built-in providers (GoldFinger, exact
// Jaccard, Cosine) all implement it; any other Similarity transparently
// falls back to per-pair dispatch.
type Localizer = similarity.Localizer

// LocalSim is a gathered cluster-local similarity kernel; see Localizer.
type LocalSim = similarity.Local

// BuildOptions parameterizes BuildC2; the zero value is the paper's
// configuration (k=30, b=4096, t=8, N=2000, ρ=5, recursive splitting on,
// largest-first scheduling, hybrid local solver) with the pipelined
// build enabled. Set DisablePipeline to restore the historical
// cluster-everything-then-solve barrier.
type BuildOptions = core.Options

// C2Stats reports clustering and timing details of a BuildC2 run,
// including the per-phase wall-clock times and the clustering/solving
// overlap recovered by the pipeline (OverlapTime, MaxQueueDepth).
type C2Stats = core.Stats

// SynthConfig describes a synthetic dataset; see Presets.
type SynthConfig = synth.Config

// Generate builds a synthetic dataset calibrated to one of the paper's
// six evaluation datasets ("ml1M", "ml10M", "ml20M", "AM", "DBLP", "GW"),
// scaled by scale (1 = paper size).
func Generate(preset string, scale float64) (*Dataset, error) {
	cfg, ok := synth.ByName(preset)
	if !ok {
		return nil, fmt.Errorf("c2knn: unknown preset %q (want one of ml1M, ml10M, ml20M, AM, DBLP, GW)", preset)
	}
	return synth.Generate(cfg.Scale(scale)), nil
}

// GenerateConfig builds a synthetic dataset from an explicit
// configuration.
func GenerateConfig(cfg SynthConfig) *Dataset { return synth.Generate(cfg) }

// Presets returns the six calibrated synthetic dataset configurations.
func Presets() []SynthConfig { return synth.Presets() }

// FromRatings binarizes and filters raw ratings into a Dataset (the
// paper keeps ratings > 3 and users with ≥ 20 ratings).
func FromRatings(name string, ratings []Rating, opts DatasetOptions) *Dataset {
	return dataset.FromRatings(name, ratings, opts)
}

// LoadDataset reads a dataset from the plain-text profile format.
func LoadDataset(path string) (*Dataset, error) { return dataset.ReadFile(path) }

// SaveDataset writes a dataset in the plain-text profile format.
func SaveDataset(path string, d *Dataset) error { return dataset.WriteFile(path, d) }

// ExactJaccard returns the exact Jaccard similarity over d's raw
// profiles.
func ExactJaccard(d *Dataset) Similarity { return similarity.NewJaccard(d) }

// Cosine returns the cosine similarity over d's binary profiles.
func Cosine(d *Dataset) Similarity { return similarity.NewCosine(d) }

// NewGoldFinger summarizes every profile of d into a bits-wide
// fingerprint (a positive multiple of 64; the paper uses 1024) and
// returns the resulting estimated-Jaccard similarity.
func NewGoldFinger(d *Dataset, bits int) (Similarity, error) {
	return goldfinger.New(d, bits, 0x60fd)
}

// BuildC2 computes an approximate KNN graph of d with Cluster-and-
// Conquer. sim is consulted for every similarity evaluation — pass a
// NewGoldFinger provider to reproduce the paper's configuration, or
// ExactJaccard for exact similarities.
//
// Clustering and solving are pipelined: the t clustering configurations
// hash concurrently and stream finalized clusters into a
// size-prioritized queue drained by the solver pool, so the first
// clusters are solved and merged while later configurations are still
// hashing. For a fixed Seed the produced cluster set — and each
// cluster's local solution — is identical to the barrier path's
// (opts.DisablePipeline); only the merge interleaving, and therefore
// tie-breaking among equal-similarity neighbors, may differ.
func BuildC2(d *Dataset, sim Similarity, opts BuildOptions) (*Graph, C2Stats) {
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return core.Build(d, sim, opts)
}

// BuildBruteForce computes the exact KNN graph of d under sim with
// neighborhoods of size k.
func BuildBruteForce(d *Dataset, sim Similarity, k int) *Graph {
	return bruteforce.Build(d.NumUsers(), k, sim, runtime.GOMAXPROCS(0))
}

// BuildHyrec computes an approximate KNN graph with the Hyrec greedy
// baseline (random start, neighbors-of-neighbors refinement).
func BuildHyrec(d *Dataset, sim Similarity, k int) *Graph {
	g, _ := hyrec.Build(d.NumUsers(), sim, hyrec.Options{K: k, Workers: runtime.GOMAXPROCS(0)})
	return g
}

// BuildNNDescent computes an approximate KNN graph with the NNDescent
// greedy baseline.
func BuildNNDescent(d *Dataset, sim Similarity, k int) *Graph {
	g, _ := nndescent.Build(d.NumUsers(), sim, nndescent.Options{K: k, Workers: runtime.GOMAXPROCS(0)})
	return g
}

// BuildLSH computes an approximate KNN graph with the MinHash-based LSH
// baseline.
func BuildLSH(d *Dataset, sim Similarity, k int) *Graph {
	g, _ := lsh.Build(d, sim, lsh.Options{K: k, Workers: runtime.GOMAXPROCS(0)})
	return g
}

// Quality returns avg_sim(approx)/avg_sim(exact) with both averages
// recomputed under sim — Eq. (2) of the paper. Values close to 1 mean
// approx can replace exact.
func Quality(approx, exact *Graph, sim Similarity) float64 {
	return knng.Quality(approx, exact, sim)
}

// AvgSim returns the average similarity of g's edges under sim (Eq. 1).
func AvgSim(g *Graph, sim Similarity) float64 { return g.AvgSim(sim) }
