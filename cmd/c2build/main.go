// Command c2build constructs a KNN graph from a dataset file with a
// chosen algorithm and writes the edges as "user neighbor similarity"
// triples, or as a binary snapshot servable without rebuilding.
//
// Usage:
//
//	c2build -in data.txt -algo c2 -k 30 -out graph.txt
//	c2build -in data.txt -algo hyrec -raw     # exact Jaccard, no GoldFinger
//	c2build -in data.txt -snap index.c2       # build once, serve many:
//	                                          # c2recommend -graph index.c2
//	c2build -in data.txt -snap index.c2 -shards 2
//	                    # additionally partition the build into per-shard
//	                    # snapshots index.c2.shard0, index.c2.shard1 and a
//	                    # manifest index.c2.manifest for c2serve -role router
//
// Algorithms: c2, hyrec, nndescent, lsh, bruteforce.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"c2knn/internal/bruteforce"
	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/frh"
	"c2knn/internal/goldfinger"
	"c2knn/internal/hyrec"
	"c2knn/internal/knng"
	"c2knn/internal/lsh"
	"c2knn/internal/nndescent"
	"c2knn/internal/persist"
	"c2knn/internal/similarity"
)

func main() {
	var (
		in      = flag.String("in", "", "input dataset file (plain-text profile format)")
		out     = flag.String("out", "", "output edge file (empty: stdout summary only)")
		snap    = flag.String("snap", "", "write a binary snapshot (frozen graph + dataset + fingerprints) to this path")
		algo    = flag.String("algo", "c2", "algorithm: c2, hyrec, nndescent, lsh, bruteforce")
		k       = flag.Int("k", 30, "neighborhood size")
		gfbits  = flag.Int("gfbits", 1024, "GoldFinger width (ignored with -raw)")
		raw     = flag.Bool("raw", false, "use exact Jaccard instead of GoldFinger")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
		seed    = flag.Int64("seed", 42, "random seed")
		shards  = flag.Int("shards", 0, "with -snap: also partition the build into this many per-shard snapshots plus a manifest")
		buckets = flag.Int("shard-buckets", frh.DefaultShardBuckets, "shard-key bucket count recorded in the manifest")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "c2build: -in is required")
		os.Exit(2)
	}
	d, err := dataset.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Println(d.ComputeStats())

	var prov similarity.Provider
	var gf *goldfinger.Set
	if *raw {
		prov = similarity.NewJaccard(d)
	} else {
		gf, err = goldfinger.New(d, *gfbits, 0x60fd)
		if err != nil {
			fatal(err)
		}
		prov = gf
	}
	counting := similarity.NewCounting(prov)

	start := time.Now()
	var g *knng.Graph
	switch *algo {
	case "c2":
		g, _ = core.Build(d, counting, core.Options{K: *k, Workers: *workers, Seed: *seed})
	case "hyrec":
		g, _ = hyrec.Build(d.NumUsers(), counting, hyrec.Options{K: *k, Workers: *workers, Seed: *seed})
	case "nndescent":
		g, _ = nndescent.Build(d.NumUsers(), counting, nndescent.Options{K: *k, Workers: *workers, Seed: *seed})
	case "lsh":
		g, _ = lsh.Build(d, counting, lsh.Options{K: *k, Workers: *workers, Seed: *seed})
	case "bruteforce":
		g = bruteforce.Build(d.NumUsers(), *k, counting, *workers)
	default:
		fmt.Fprintf(os.Stderr, "c2build: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	fmt.Printf("%s: %v, %d similarity computations, avg stored sim %.4f\n",
		*algo, time.Since(start).Round(time.Millisecond), counting.Count(), g.AvgStoredSim())

	if *snap != "" {
		start = time.Now()
		frozen := g.Freeze()
		err := persist.WriteFile(*snap, &persist.Snapshot{
			Graph:      frozen,
			Train:      d,
			GoldFinger: gf, // nil with -raw: the snapshot simply omits the section
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote snapshot %s (%d users, %d edges) in %v\n",
			*snap, frozen.NumUsers(), frozen.NumEdges(), time.Since(start).Round(time.Millisecond))

		if *shards > 1 {
			if err := writeShards(*snap, frozen, d, gf, *buckets, *shards); err != nil {
				fatal(err)
			}
		}
	}

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(f)
	for u := 0; u < g.NumUsers(); u++ {
		for _, nb := range g.Neighbors(int32(u)) {
			fmt.Fprintf(w, "%d %d %.6f\n", u, nb.ID, nb.Sim)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// writeShards partitions the frozen build into per-shard snapshots
// (<snap>.shard<i>) plus a versioned manifest (<snap>.manifest) mapping
// bucket ranges to shard files — the artifact set c2serve -role router
// serves. The manifest records each shard file's whole-file CRC and a
// common epoch (the build's unix time), so a router can verify it is
// fronting one coherent build.
func writeShards(snapPath string, frozen *knng.Frozen, d *dataset.Dataset, gf *goldfinger.Set, buckets, shards int) error {
	start := time.Now()
	ranges := frh.PartitionBuckets(buckets, shards)
	parts, users, err := persist.PartitionSnapshot(&persist.Snapshot{
		Graph: frozen, Train: d, GoldFinger: gf,
	}, buckets, ranges)
	if err != nil {
		return err
	}
	m := &persist.Manifest{Buckets: buckets, Epoch: uint64(time.Now().Unix())}
	for i, part := range parts {
		path := fmt.Sprintf("%s.shard%d", snapPath, i)
		if err := persist.WriteFile(path, part); err != nil {
			return err
		}
		crc, err := persist.FileCRC32C(path)
		if err != nil {
			return err
		}
		m.Shards = append(m.Shards, persist.ShardEntry{
			ID: i, Range: ranges[i], Path: filepath.Base(path),
			CRC: crc, Epoch: m.Epoch, Users: users[i],
		})
		fmt.Printf("wrote shard snapshot %s (%d owned users, %d edges)\n",
			path, users[i], part.Graph.NumEdges())
	}
	manifestPath := snapPath + ".manifest"
	if err := persist.WriteManifestFile(manifestPath, m); err != nil {
		return err
	}
	fmt.Printf("wrote shard manifest %s (%d shards, %d buckets, epoch %d) in %v\n",
		manifestPath, shards, buckets, m.Epoch, time.Since(start).Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "c2build: %v\n", err)
	os.Exit(1)
}
