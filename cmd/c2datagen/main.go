// Command c2datagen generates one of the calibrated synthetic datasets
// and writes it in the plain-text profile format, printing its Table
// I-style statistics.
//
// Usage:
//
//	c2datagen -preset ml1M -scale 0.1 -out ml1m.txt
//	c2datagen -preset AM -stats            # statistics only, no file
package main

import (
	"flag"
	"fmt"
	"os"

	"c2knn/internal/dataset"
	"c2knn/internal/synth"
)

func main() {
	var (
		preset    = flag.String("preset", "ml1M", "dataset preset: ml1M, ml10M, ml20M, AM, DBLP, GW")
		scale     = flag.Float64("scale", 1.0, "scale factor (1 = paper size)")
		out       = flag.String("out", "", "output path (empty: statistics only)")
		seed      = flag.Int64("seed", 0, "override the preset's seed (0 keeps it)")
		statsOnly = flag.Bool("stats", false, "print statistics without writing a file")
	)
	flag.Parse()

	cfg, ok := synth.ByName(*preset)
	if !ok {
		fmt.Fprintf(os.Stderr, "c2datagen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	cfg = cfg.Scale(*scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	d := synth.Generate(cfg)
	fmt.Println(d.ComputeStats())

	if *statsOnly || *out == "" {
		return
	}
	if err := dataset.WriteFile(*out, d); err != nil {
		fmt.Fprintf(os.Stderr, "c2datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d users, %d ratings)\n", *out, d.NumUsers(), d.NumRatings())
}
