// Command c2recommend demonstrates the paper's end-user application
// (§V-B): it builds KNN graphs with brute force and with C² over a
// dataset, recommends items under cross-validation, and compares recalls.
//
// With -graph it instead serves from a snapshot written by
// c2build -snap: no graphs are rebuilt and the brute-force baseline is
// skipped — the fold evaluation reuses the loaded frozen graph, which
// is the build-once/load-many serving workflow.
//
// Usage:
//
//	c2recommend -preset ml1M -scale 0.1 -n 30
//	c2recommend -in data.txt -folds 5
//	c2recommend -graph index.c2 -n 30
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"c2knn/internal/bruteforce"
	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/persist"
	"c2knn/internal/recommend"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

func main() {
	var (
		preset = flag.String("preset", "ml1M", "dataset preset (ignored with -in or -graph)")
		scale  = flag.Float64("scale", 0.1, "preset scale factor")
		in     = flag.String("in", "", "load dataset from file instead of generating")
		graph  = flag.String("graph", "", "serve from a snapshot (c2build -snap); skips all graph building and the brute-force baseline")
		nRec   = flag.Int("n", 30, "items recommended per user")
		k      = flag.Int("k", 30, "neighborhood size (ignored with -graph)")
		folds  = flag.Int("folds", 5, "cross-validation folds")
		seed   = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	workers := runtime.GOMAXPROCS(0)

	if *graph != "" {
		serveFromSnapshot(*graph, *nRec, *folds, *seed, workers)
		return
	}

	var d *dataset.Dataset
	var err error
	if *in != "" {
		d, err = dataset.ReadFile(*in)
	} else {
		var cfg synth.Config
		cfg, ok := synth.ByName(*preset)
		if !ok {
			fmt.Fprintf(os.Stderr, "c2recommend: unknown preset %q\n", *preset)
			os.Exit(2)
		}
		d = synth.Generate(cfg.Scale(*scale))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "c2recommend: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(d.ComputeStats())

	var bfSum, c2Sum float64
	var bfTime, c2Time time.Duration
	for i, f := range recommend.Split(d, *folds, *seed) {
		raw := similarity.NewJaccard(f.Train)
		gf, err := goldfinger.New(f.Train, goldfinger.DefaultBits, 0x60fd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c2recommend: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		exact := bruteforce.Build(f.Train.NumUsers(), *k, raw, workers)
		bfTime += time.Since(start)
		start = time.Now()
		g, _ := core.Build(f.Train, gf, core.Options{K: *k, Workers: workers, Seed: *seed})
		c2Time += time.Since(start)

		bf := recommend.EvalRecall(f, exact, *nRec, workers)
		c2 := recommend.EvalRecall(f, g, *nRec, workers)
		bfSum += bf
		c2Sum += c2
		fmt.Printf("fold %d: recall@%d bruteforce=%.3f C2=%.3f\n", i, *nRec, bf, c2)
	}
	n := float64(*folds)
	fmt.Printf("\naverage: bruteforce=%.3f (%v)  C2=%.3f (%v)  Δ=%+.3f\n",
		bfSum/n, (bfTime / time.Duration(*folds)).Round(time.Millisecond),
		c2Sum/n, (c2Time / time.Duration(*folds)).Round(time.Millisecond),
		c2Sum/n-bfSum/n)
}

// serveFromSnapshot loads a frozen graph + dataset and evaluates recall
// without building anything: each fold reuses the snapshot's graph for
// neighborhoods while scoring and exclusion use the fold's training
// profiles. Because the loaded graph was built over the full dataset
// (held-out items included in its similarity basis), its recall reads
// slightly optimistic versus a per-fold rebuild — the output says so.
func serveFromSnapshot(path string, nRec, folds int, seed int64, workers int) {
	start := time.Now()
	snap, err := persist.LoadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c2recommend: %v\n", err)
		os.Exit(1)
	}
	defer snap.Close()
	if snap.Graph == nil || snap.Train == nil {
		fmt.Fprintf(os.Stderr, "c2recommend: snapshot %s lacks a graph or dataset section\n", path)
		os.Exit(1)
	}
	loadTime := time.Since(start)
	d := snap.Train
	fmt.Println(d.ComputeStats())
	fmt.Printf("loaded %s in %v: %d users, %d edges, k=%d\n",
		path, loadTime.Round(time.Millisecond), snap.Graph.NumUsers(), snap.Graph.NumEdges(), snap.Graph.K)

	var sum float64
	var evalTime time.Duration
	queries := 0
	for i, f := range recommend.Split(d, folds, seed) {
		start = time.Now()
		r := recommend.EvalRecallFrozen(f, snap.Graph, nRec, workers)
		evalTime += time.Since(start)
		queries += countTestUsers(f)
		sum += r
		fmt.Printf("fold %d: recall@%d C2(snapshot)=%.3f\n", i, nRec, r)
	}
	qps := 0.0
	if evalTime > 0 {
		qps = float64(queries) / evalTime.Seconds()
	}
	fmt.Printf("\naverage: C2(snapshot)=%.3f  (%d queries in %v, %.0f queries/sec, no rebuild)\n",
		sum/float64(folds), queries, evalTime.Round(time.Millisecond), qps)
	fmt.Println("note: the snapshot graph was built over the full dataset, so recall reads slightly optimistic vs a per-fold rebuild; the brute-force baseline is skipped in -graph mode")
}

func countTestUsers(f recommend.Fold) int {
	n := 0
	for _, test := range f.Test {
		if len(test) > 0 {
			n++
		}
	}
	return n
}
