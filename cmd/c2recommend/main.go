// Command c2recommend demonstrates the paper's end-user application
// (§V-B): it builds KNN graphs with brute force and with C² over a
// dataset, recommends items under cross-validation, and compares recalls.
//
// Usage:
//
//	c2recommend -preset ml1M -scale 0.1 -n 30
//	c2recommend -in data.txt -folds 5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"c2knn/internal/bruteforce"
	"c2knn/internal/core"
	"c2knn/internal/dataset"
	"c2knn/internal/goldfinger"
	"c2knn/internal/recommend"
	"c2knn/internal/similarity"
	"c2knn/internal/synth"
)

func main() {
	var (
		preset = flag.String("preset", "ml1M", "dataset preset (ignored with -in)")
		scale  = flag.Float64("scale", 0.1, "preset scale factor")
		in     = flag.String("in", "", "load dataset from file instead of generating")
		nRec   = flag.Int("n", 30, "items recommended per user")
		k      = flag.Int("k", 30, "neighborhood size")
		folds  = flag.Int("folds", 5, "cross-validation folds")
		seed   = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()
	workers := runtime.GOMAXPROCS(0)

	var d *dataset.Dataset
	var err error
	if *in != "" {
		d, err = dataset.ReadFile(*in)
	} else {
		var cfg synth.Config
		cfg, ok := synth.ByName(*preset)
		if !ok {
			fmt.Fprintf(os.Stderr, "c2recommend: unknown preset %q\n", *preset)
			os.Exit(2)
		}
		d = synth.Generate(cfg.Scale(*scale))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "c2recommend: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(d.ComputeStats())

	var bfSum, c2Sum float64
	var bfTime, c2Time time.Duration
	for i, f := range recommend.Split(d, *folds, *seed) {
		raw := similarity.NewJaccard(f.Train)
		gf, err := goldfinger.New(f.Train, goldfinger.DefaultBits, 0x60fd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c2recommend: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		exact := bruteforce.Build(f.Train.NumUsers(), *k, raw, workers)
		bfTime += time.Since(start)
		start = time.Now()
		g, _ := core.Build(f.Train, gf, core.Options{K: *k, Workers: workers, Seed: *seed})
		c2Time += time.Since(start)

		bf := recommend.EvalRecall(f, exact, *nRec, workers)
		c2 := recommend.EvalRecall(f, g, *nRec, workers)
		bfSum += bf
		c2Sum += c2
		fmt.Printf("fold %d: recall@%d bruteforce=%.3f C2=%.3f\n", i, *nRec, bf, c2)
	}
	n := float64(*folds)
	fmt.Printf("\naverage: bruteforce=%.3f (%v)  C2=%.3f (%v)  Δ=%+.3f\n",
		bfSum/n, (bfTime / time.Duration(*folds)).Round(time.Millisecond),
		c2Sum/n, (c2Time / time.Duration(*folds)).Round(time.Millisecond),
		c2Sum/n-bfSum/n)
}
