// Command soak runs the fault-injection soak harness against an
// in-process hardened serving daemon (internal/server behind the full
// middleware stack) and exits non-zero if any hardening invariant is
// violated: a well-formed request failing or returning wrong bytes, a
// fault probe answered with the wrong status, a daemon death, a corrupt
// snapshot reload taking down the old epoch, or the /metrics counters
// drifting from the harness's own accounting.
//
// Usage:
//
//	soak -duration 60s -clients 8 -json benchmarks/BENCH_soak.json
//
// CI runs it race-enabled through scripts/bench-soak.sh and gates the
// JSON record in scripts/bench-compare.sh.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"c2knn/internal/experiments"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.05, "dataset scale factor (1 = paper size)")
		workers  = flag.Int("workers", 0, "server worker pool size (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 42, "master random seed")
		duration = flag.Duration("duration", 60*time.Second, "wall-clock load window")
		clients  = flag.Int("clients", 8, "concurrent well-formed clients")
		jsonOut  = flag.String("json", "", "write the summary as JSON to this file (CI records it as benchmarks/BENCH_soak.json)")
		p99Max   = flag.Duration("p99-max", time.Second, "fail if the well-formed p99 exceeds this")
	)
	flag.Parse()

	env := &experiments.Env{Scale: *scale, Workers: *workers, Seed: *seed, Out: os.Stdout}
	sum, err := env.Soak(experiments.SoakOptions{Duration: *duration, Clients: *clients})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(1)
		}
	}

	// The invariants, spelled out one per line so a CI log names the
	// exact violation (the JSON gate in bench-compare.sh repeats them).
	fail := 0
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fmt.Fprintf(os.Stderr, "soak: FAIL: "+format+"\n", args...)
			fail = 1
		}
	}
	check(sum.Requests > 0, "no well-formed requests completed")
	check(sum.FailedReqs == 0, "%d well-formed requests failed", sum.FailedReqs)
	check(sum.MismatchedResps == 0, "%d responses diverged from Index.Recommend", sum.MismatchedResps)
	check(sum.FaultUnexpected == 0, "%d fault probes answered with the wrong status", sum.FaultUnexpected)
	check(sum.Restarts == 0, "daemon died %d time(s)", sum.Restarts)
	check(sum.Fault413 >= 1, "no oversized body was rejected with 413")
	check(sum.Fault400 >= 1, "no over-cap batch was rejected with 400")
	check(sum.Fault500 >= 1, "no injected panic was recovered into a 500")
	check(sum.Fault503 >= 1, "no deadline expiry produced a 503")
	check(sum.Shed429 >= 1, "admission control never shed with 429")
	check(sum.HotSwaps >= 1, "no hot swap completed under load")
	check(sum.CorruptReloads >= 1, "the corrupt-reload sequence did not run")
	check(sum.CorruptKeptServing, "old epoch did not keep serving through the corrupt reload")
	check(sum.GoodReloadAfterCorrupt, "good reload after the corrupt one did not succeed")
	check(sum.MetricsReconciled, "/metrics drifted from harness accounting: %s", sum.MetricsDiff)
	check(sum.P99Micros <= float64(*p99Max/time.Microsecond),
		"p99 %.0f µs over the %v bound", sum.P99Micros, *p99Max)
	if fail == 0 {
		fmt.Println("soak: all hardening invariants held")
	}
	os.Exit(fail)
}
