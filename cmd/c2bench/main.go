// Command c2bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints paper-style rows; absolute numbers
// depend on the hardware and on the synthetic datasets, but the shapes —
// which algorithm wins, by what factor, where the trade-offs knee — are
// the reproduction targets recorded in EXPERIMENTS.md.
//
// Usage:
//
//	c2bench -exp table2 -scale 0.1
//	c2bench -exp all -scale 0.05 -workers 4
//
// Experiments: table1, table2, table3, table4, table5, fig6, fig7, fig8,
// theory, ablations, pipeline, serve, serve-http, solve, shard, load, update, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"c2knn/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: table1..table5, fig6..fig8, theory, ablations, pipeline, serve, serve-http, solve, shard, load, update, all")
		jsonOut  = flag.String("json", "", "write the pipeline/serve/serve-http/solve/shard/load/update experiment's summary as JSON to this file (CI records them as benchmarks/BENCH_pipeline.json, BENCH_serve.json, BENCH_http.json, BENCH_solve.json, BENCH_shard.json, BENCH_load.json and BENCH_update.json); when several such experiments run, the experiment name is inserted before the extension")
		scale    = flag.Float64("scale", 0.05, "dataset scale factor (1 = paper size)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 42, "master random seed")
		k        = flag.Int("k", 30, "neighborhood size")
		gfbits   = flag.Int("gfbits", 1024, "GoldFinger width in bits")
		folds    = flag.Int("folds", 5, "cross-validation folds for table3")
		datasets = flag.String("datasets", "", "comma-separated dataset subset for table2/table3 (default: all six)")
	)
	flag.Parse()

	env := &experiments.Env{
		Scale:   *scale,
		Workers: *workers,
		Seed:    *seed,
		K:       *k,
		GFBits:  *gfbits,
		Folds:   *folds,
		Out:     os.Stdout,
	}
	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}

	// Assigned after toRun is known; runners only call it at run time.
	var jsonPath func(string) string

	runners := map[string]func() error{
		"table1":    func() error { _, err := env.Table1(); return err },
		"table2":    func() error { _, err := env.Table2(names); return err },
		"table3":    func() error { _, err := env.Table3(names); return err },
		"table4":    func() error { _, err := env.Table4(); return err },
		"table5":    func() error { _, err := env.Table5(); return err },
		"fig6":      func() error { _, err := env.Fig6(); return err },
		"fig7":      func() error { _, err := env.Fig7(); return err },
		"fig8":      func() error { _, err := env.Fig8(); return err },
		"theory":    func() error { _, err := env.Theory(); return err },
		"ablations": func() error { _, err := env.Ablations(); return err },
		"pipeline": func() error {
			_, sum, err := env.Pipeline()
			if err != nil {
				return err
			}
			return writeSummary(jsonPath("pipeline"), sum)
		},
		"serve": func() error {
			sum, err := env.Serve()
			if err != nil {
				return err
			}
			return writeSummary(jsonPath("serve"), sum)
		},
		"serve-http": func() error {
			sum, err := env.ServeHTTP()
			if err != nil {
				return err
			}
			return writeSummary(jsonPath("serve-http"), sum)
		},
		"solve": func() error {
			sum, err := env.Solve()
			if err != nil {
				return err
			}
			return writeSummary(jsonPath("solve"), sum)
		},
		"shard": func() error {
			sum, err := env.Shard()
			if err != nil {
				return err
			}
			return writeSummary(jsonPath("shard"), sum)
		},
		"load": func() error {
			sum, err := env.Load()
			if err != nil {
				return err
			}
			return writeSummary(jsonPath("load"), sum)
		},
		"update": func() error {
			sum, err := env.Update()
			if err != nil {
				return err
			}
			return writeSummary(jsonPath("update"), sum)
		},
	}
	order := []string{"table1", "table2", "table3", "table4", "table5", "fig6", "fig7", "fig8", "theory", "ablations", "pipeline", "serve", "serve-http", "solve", "shard", "load", "update"}

	var toRun []string
	if *exp == "all" {
		toRun = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "c2bench: unknown experiment %q\n", name)
				os.Exit(2)
			}
			toRun = append(toRun, name)
		}
	}

	// When several JSON-producing experiments run in one invocation, a
	// single -json path would be silently overwritten by the last one;
	// disambiguate by inserting the experiment name before the extension
	// (out.json → out.pipeline.json, out.serve.json, out.solve.json).
	jsonProducers := 0
	for _, name := range toRun {
		if name == "pipeline" || name == "serve" || name == "serve-http" || name == "solve" || name == "shard" || name == "load" || name == "update" {
			jsonProducers++
		}
	}
	jsonPath = func(name string) string {
		if *jsonOut == "" || jsonProducers <= 1 {
			return *jsonOut
		}
		ext := filepath.Ext(*jsonOut)
		return strings.TrimSuffix(*jsonOut, ext) + "." + name + ext
	}
	for _, name := range toRun {
		start := time.Now()
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "c2bench: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// writeSummary records an experiment's flat summary as JSON when -json
// is given (no-op otherwise).
func writeSummary(path string, sum any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
