// Command c2serve is the long-running HTTP serving daemon. It runs in
// one of two roles behind the same binary and wire protocol:
//
//   - -role shard (the default): load a snapshot written by c2build
//     -snap into a c2knn.Index and answer queries from it — the query
//     side of the build-once/serve-many split. With a per-shard
//     snapshot (c2build -shards) the process serves one shard of a
//     partitioned corpus. -load picks the snapshot materialization:
//     auto (the default) memory-maps v2 snapshots so cold start is a
//     page-cache hit and co-hosted replicas share one physical copy,
//     mmap requires that path, copy forces the legacy decode-to-heap.
//   - -role router: stateless scatter-gather tier. Loads a shard
//     manifest (c2build -shards writes it next to the snapshot), wires
//     the bucket-range table to replica addresses from -shard-addrs,
//     and fans queries out to the shard daemons: single requests are
//     proxied from the owning shard, batches are split and re-stitched
//     byte-identically, failures fail over between replicas (hedged
//     after -hedge), and a fully unreachable shard degrades to empty
//     results with an X-C2-Partial header instead of failing requests.
//
// Usage:
//
//	c2build -in data.txt -snap index.c2
//	c2serve -snap index.c2 -addr :8080
//
//	c2build -in data.txt -snap index.c2 -shards 2
//	c2serve -role shard -snap index.c2.shard0 -addr :8081
//	c2serve -role shard -snap index.c2.shard1 -addr :8082
//	c2serve -role router -manifest index.c2.manifest \
//	        -shard-addrs '0=http://localhost:8081,1=http://localhost:8082' -addr :8080
//
// Endpoints:
//
//	GET  /v1/neighbors?user=U[&k=K]     one user's neighbor ids + sims
//	GET  /v1/topk?user=U[&k=K]          one user's top-k as (id, sim) pairs
//	GET  /v1/recommend?user=U[&n=N]     one user's top-n recommended items
//	POST /v1/{neighbors,topk,recommend} batched: {"users":[...],"k":K|"n":N}
//	GET  /healthz                       liveness + current snapshot epoch
//	GET  /statsz                        qps, p50/p99, cache hit rate, counters
//	GET  /metrics                       Prometheus text exposition
//	POST /admin/reload                  hot-swap to the snapshot on disk
//	POST /v1/upsert                     absorb profiles without a rebuild (-upserts)
//	POST /admin/compact                 fold the delta into -snap and hot-swap
//
// Freshness (-upserts): the daemon attaches a delta overlay to the
// loaded index and absorbs profile writes in sub-second time —
// {"user":-1,"items":[...]} inserts a new user, an existing id merges
// items, {"upserts":[...]} batches. Queries serve base + delta merged
// views immediately. The background compactor (-compact-every,
// -compact-depth, -compact-age) folds the delta back into -snap and
// hot-swaps the result without dropping writes that race in. Exactly
// one daemon per snapshot may be writable; read replicas run
// -read-only and answer writes with 403 and a typed body, as does the
// router role (a router that proxied writes would split the write
// stream across replicas — the delta-skew probe below catches exactly
// that operator error).
//
// Hardening (see internal/server/middleware): every request gets an
// X-Request-ID; handler panics become logged 500s instead of dropped
// connections; -timeout bounds each query (503 beyond); -max-body caps
// request bodies (413 beyond); -inflight sheds stampedes with 429 +
// Retry-After instead of queueing unboundedly; -access-log writes one
// line per request. -pprof starts a separate admin listener with
// /debug/pprof and /metrics — bind it to localhost, it is
// authentication-free.
//
// Lifecycle: SIGHUP re-reads -snap and atomically swaps the new index
// in with zero downtime (equivalent to POST /admin/reload; the router
// role is stateless and ignores it); SIGINT and SIGTERM stop accepting
// connections and drain in-flight requests before exiting. A
// version-skewed snapshot is reported as "rebuild needed" and a damaged
// one as "corrupt" — the daemon keeps serving the old index in both
// cases, and /statsz carries the failure kind. A router surfaces a
// shard replica stuck on an old epoch after a hot swap through the same
// /statsz plumbing (kind "epoch-skew"), and same-epoch replicas whose
// upsert cursors diverge — writes landing on more than one replica —
// as kind "delta-skew".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"c2knn"
	"c2knn/internal/persist"
	"c2knn/internal/router"
	"c2knn/internal/server"
)

func main() {
	var (
		snap    = flag.String("snap", "", "snapshot file written by c2build -snap (required)")
		load    = flag.String("load", "auto", "snapshot load mode: auto (mmap when possible), mmap (require zero-copy), copy (decode to heap)")
		addr    = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		pool    = flag.Int("pool", 0, "max concurrent queries (0 = 4x GOMAXPROCS)")
		cache   = flag.Int("cache", 4096, "result cache entries (negative disables caching)")
		shards  = flag.Int("shards", 16, "result cache shard count")
		batch   = flag.Int("batch", 1024, "max users per batched request (400 beyond)")
		drainTO = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")

		timeout   = flag.Duration("timeout", 10*time.Second, "per-request deadline on query endpoints, 503 beyond (0 disables)")
		maxBody   = flag.Int64("max-body", 1<<20, "request body cap in bytes, 413 beyond")
		inflight  = flag.Int("inflight", 0, "max in-flight requests before shedding with 429 (0 = 64x pool, negative disables)")
		accessLog = flag.Bool("access-log", false, "log one line per completed request")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof and /metrics on this extra admin address (empty disables; keep it on localhost)")
		faults    = flag.Bool("fault-injection", false, "mount /admin/panic and /admin/delay (soak testing only; never in production)")
		readTO    = flag.Duration("read-timeout", 30*time.Second, "socket read timeout — bounds slow-loris request bodies")

		upserts      = flag.Bool("upserts", false, "enable the write path: POST /v1/upsert absorbs profiles into a delta overlay, /admin/compact folds it back into -snap")
		readOnly     = flag.Bool("read-only", false, "refuse /v1/upsert and /admin/compact with 403 (read replicas; routers always refuse)")
		upsertSeed   = flag.Int64("upsert-seed", 0, "FastRandomHash family seed for upsert placement (match the build's -seed)")
		compactEvery = flag.Duration("compact-every", 5*time.Second, "background compactor check period (0 disables the background loop)")
		compactDepth = flag.Int("compact-depth", 1024, "compact once this many upserts are pending (0 disables the depth trigger)")
		compactAge   = flag.Duration("compact-age", 30*time.Second, "compact once the oldest pending upsert is this old (0 disables the age trigger)")

		role       = flag.String("role", "shard", "serving role: shard (one snapshot) or router (scatter-gather over shard daemons)")
		manifest   = flag.String("manifest", "", "router: shard manifest written by c2build -shards (required)")
		shardAddrs = flag.String("shard-addrs", "", "router: replica table 'id=url|url,id=url' mapping manifest shard ids to base URLs (required)")
		hedge      = flag.Duration("hedge", 500*time.Millisecond, "router: hedge a slow upstream try to another replica after this long (negative disables)")
		upstreamTO = flag.Duration("upstream-timeout", 2*time.Second, "router: per-upstream-try deadline")
		healthTick = flag.Duration("health-every", 2*time.Second, "router: replica health poll period")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("c2serve: ")

	switch *role {
	case "shard":
	case "router":
		rcfg := routerCLI{
			manifest: *manifest, shardAddrs: *shardAddrs,
			hedge: *hedge, upstreamTO: *upstreamTO, healthTick: *healthTick,
			batch: *batch, maxBody: *maxBody, timeout: *timeout, inflight: *inflight,
			accessLog: *accessLog,
		}
		runRouter(rcfg, *addr, *pprofAddr, *drainTO, *readTO)
		return
	default:
		fmt.Fprintf(os.Stderr, "c2serve: unknown -role %q (want shard or router)\n", *role)
		os.Exit(2)
	}

	if *snap == "" {
		fmt.Fprintln(os.Stderr, "c2serve: -snap is required")
		os.Exit(2)
	}

	loadMode, err := c2knn.ParseLoadMode(*load)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c2serve: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	ix, err := c2knn.LoadIndexMode(*snap, loadMode)
	if err != nil {
		switch {
		case errors.Is(err, c2knn.ErrSnapshotVersion):
			log.Printf("snapshot %s was written by an incompatible format version; rebuild it with this binary's c2build -snap", *snap)
		case errors.Is(err, c2knn.ErrSnapshotCorrupt):
			log.Printf("snapshot %s is corrupt; restore it from a good copy or rebuild", *snap)
		}
		log.Fatalf("load: %v", err)
	}
	via := "copy decode"
	if ix.Mapped() {
		via = "mmap (zero-copy)"
	}
	log.Printf("loaded %s in %v via %s: %d users, k=%d", *snap, time.Since(start).Round(time.Millisecond), via, ix.NumUsers(), ix.K())

	cfg := server.Config{
		SnapshotPath:   *snap,
		LoadMode:       loadMode,
		MaxConcurrent:  *pool,
		CacheEntries:   *cache,
		CacheShards:    *shards,
		MaxBatch:       *batch,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		MaxInFlight:    *inflight,
		Logf:           log.Printf,
		FaultInjection: *faults,
	}
	// Flag semantics: 0 means "off" for the user, but Config treats 0 as
	// "use the default" — translate.
	if *timeout == 0 {
		cfg.RequestTimeout = -1
	}
	if *accessLog {
		cfg.AccessLogf = log.Printf
	}
	if *faults {
		log.Printf("fault injection ENABLED: /admin/panic and /admin/delay are live")
	}
	cfg.Upserts = *upserts
	cfg.ReadOnly = *readOnly
	cfg.UpsertParams = c2knn.UpsertConfig{Seed: *upsertSeed}
	srv, err := server.New(ix, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *upserts {
		log.Printf("upserts enabled: /v1/upsert and /admin/compact are live")
		if *compactEvery > 0 && (*compactDepth > 0 || *compactAge > 0) {
			stop := srv.StartCompactor(*compactEvery, *compactDepth, *compactAge)
			defer stop()
			log.Printf("background compactor: every %v, depth ≥ %d or age ≥ %v", *compactEvery, *compactDepth, *compactAge)
		}
	}

	if *pprofAddr != "" {
		admin := http.NewServeMux()
		admin.HandleFunc("/debug/pprof/", pprof.Index)
		admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		admin.Handle("/metrics", srv.MetricsHandler())
		adminLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		log.Printf("admin (pprof + metrics) on %s", adminLn.Addr())
		go func() {
			adminSrv := &http.Server{Handler: admin, ReadHeaderTimeout: 10 * time.Second}
			if err := adminSrv.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin serve: %v", err)
			}
		}()
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				log.Printf("SIGHUP reload failed (%s): %v", server.ReloadErrorKind(err), err)
				continue
			}
			cur := srv.Index()
			log.Printf("SIGHUP reload ok: epoch %d, %d users, k=%d", srv.Epoch(), cur.NumUsers(), cur.K())
		}
	}()

	listenAndServe(srv.Handler(), *addr, *drainTO, *readTO)
}

// listenAndServe runs handler on addr with the daemon's socket
// discipline until SIGINT/SIGTERM drains it. Both roles share it, so
// operational behavior — including the parseable "listening on" line
// the e2e harness waits for — is identical across the tier.
func listenAndServe(handler http.Handler, addr string, drainTO, readTO time.Duration) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	// The actual address (resolves port 0); the e2e harness parses this
	// line, so keep its shape stable.
	fmt.Printf("c2serve: listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout also covers the body, so a slow-loris client that
		// sends headers promptly but trickles its POST body is cut off
		// here rather than holding a connection open indefinitely.
		ReadTimeout: readTO,
		// Bound the whole response write: the worker pool releases its
		// slot before the body is written, but a slow-reading client must
		// still not be able to hold a connection (and its goroutine) open
		// forever.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case sig := <-stop:
		log.Printf("%v: draining (timeout %v)", sig, drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}

// routerCLI carries the router role's flag values.
type routerCLI struct {
	manifest, shardAddrs          string
	hedge, upstreamTO, healthTick time.Duration
	timeout                       time.Duration
	batch                         int
	maxBody                       int64
	inflight                      int
	accessLog                     bool
}

// runRouter builds the scatter-gather tier from a shard manifest and a
// replica table and serves it.
func runRouter(cli routerCLI, addr, pprofAddr string, drainTO, readTO time.Duration) {
	if cli.manifest == "" || cli.shardAddrs == "" {
		fmt.Fprintln(os.Stderr, "c2serve: -role router requires -manifest and -shard-addrs")
		os.Exit(2)
	}
	m, err := persist.ReadManifestFile(cli.manifest)
	if err != nil {
		log.Fatalf("manifest: %v", err)
	}
	table, err := parseShardAddrs(cli.shardAddrs)
	if err != nil {
		log.Fatalf("shard-addrs: %v", err)
	}
	cfg := router.Config{
		Buckets:         m.Buckets,
		UpstreamTimeout: cli.upstreamTO,
		HedgeAfter:      cli.hedge,
		HealthEvery:     cli.healthTick,
		MaxBatch:        cli.batch,
		MaxBodyBytes:    cli.maxBody,
		RequestTimeout:  cli.timeout,
		MaxInFlight:     cli.inflight,
		Logf:            log.Printf,
	}
	if cli.timeout == 0 {
		cfg.RequestTimeout = -1
	}
	if cli.accessLog {
		cfg.AccessLogf = log.Printf
	}
	for _, sh := range m.Shards {
		replicas, ok := table[sh.ID]
		if !ok {
			log.Fatalf("shard-addrs: manifest shard %d has no replica addresses", sh.ID)
		}
		delete(table, sh.ID)
		cfg.Shards = append(cfg.Shards, router.ShardSpec{ID: sh.ID, Range: sh.Range, Replicas: replicas})
	}
	for id := range table {
		log.Fatalf("shard-addrs: shard %d is not in the manifest", id)
	}
	rt, err := router.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	log.Printf("router over %d shards (%d buckets, manifest epoch %d)", len(cfg.Shards), m.Buckets, m.Epoch)

	if pprofAddr != "" {
		admin := http.NewServeMux()
		admin.HandleFunc("/debug/pprof/", pprof.Index)
		admin.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		admin.HandleFunc("/debug/pprof/profile", pprof.Profile)
		admin.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		admin.HandleFunc("/debug/pprof/trace", pprof.Trace)
		adminLn, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		log.Printf("admin (pprof) on %s", adminLn.Addr())
		go func() {
			adminSrv := &http.Server{Handler: admin, ReadHeaderTimeout: 10 * time.Second}
			if err := adminSrv.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin serve: %v", err)
			}
		}()
	}

	listenAndServe(rt.Handler(), addr, drainTO, readTO)
}

// parseShardAddrs parses 'id=url|url,id=url' into a replica table.
func parseShardAddrs(s string) (map[int][]string, error) {
	table := make(map[int][]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, urls, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not id=url|url", entry)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("entry %q: shard id %q is not an integer", entry, id)
		}
		if _, dup := table[n]; dup {
			return nil, fmt.Errorf("shard %d appears twice", n)
		}
		for _, u := range strings.Split(urls, "|") {
			u = strings.TrimSpace(strings.TrimSuffix(u, "/"))
			if u == "" {
				continue
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			table[n] = append(table[n], u)
		}
		if len(table[n]) == 0 {
			return nil, fmt.Errorf("shard %d has no replica URLs", n)
		}
	}
	if len(table) == 0 {
		return nil, errors.New("empty replica table")
	}
	return table, nil
}
