package c2knn

import (
	"runtime"

	"c2knn/internal/recommend"
)

// Fold is one train/test split of a cross-validation; see SplitFolds.
type Fold = recommend.Fold

// SplitFolds produces a k-fold cross-validation of d: fold i holds out
// the i-th part of every user's (shuffled) profile.
func SplitFolds(d *Dataset, folds int, seed int64) []Fold {
	return recommend.Split(d, folds, seed)
}

// Recommend returns up to n items for user u by user-based collaborative
// filtering over g: items in neighbors' profiles (but not u's own),
// scored by the recommending neighbors' similarities.
func Recommend(train *Dataset, g *Graph, u int32, n int) []int32 {
	return recommend.Recommend(train, g, u, n)
}

// EvalRecall recommends n items to every user of the fold using g and
// returns the mean recall over users with held-out items. g is frozen
// once and evaluated on the CSR serving path; use EvalRecallFrozen to
// reuse an already-frozen graph.
func EvalRecall(f Fold, g *Graph, n int) float64 {
	return recommend.EvalRecall(f, g, n, runtime.GOMAXPROCS(0))
}

// EvalRecallFrozen is EvalRecall over a frozen graph (e.g. one loaded
// from a snapshot): per-worker pooled scratch, no per-query maps.
func EvalRecallFrozen(f Fold, g *FrozenGraph, n int) float64 {
	return recommend.EvalRecallFrozen(f, g, n, runtime.GOMAXPROCS(0))
}
