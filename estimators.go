package c2knn

import (
	"c2knn/internal/bbit"
	"c2knn/internal/bloom"
)

// NewBBitMinHash summarizes every profile into a t-entry minwise
// signature truncated to `bits` bits per entry (Li & König's b-bit
// minwise hashing, reference [18] of the paper) and returns the resulting
// estimated-Jaccard similarity. An alternative to NewGoldFinger with a
// different memory/precision trade-off.
func NewBBitMinHash(d *Dataset, bits uint, t int) (Similarity, error) {
	return bbit.New(d, bits, t, 0xb17)
}

// NewBloomProfiles summarizes every profile into an m-bit Bloom filter
// with h hashes per item (references [37], [38] of the paper) and returns
// the resulting estimated-Jaccard similarity. With h=1 this is
// structurally GoldFinger.
func NewBloomProfiles(d *Dataset, mBits, h int) (Similarity, error) {
	return bloom.New(d, mBits, h, 0xb100)
}
